//! Host tasking: `nowait` target tasks, `depend` clauses, hidden helpers.
//!
//! An OpenMP `target … nowait` region becomes a *target task* executed by
//! one of the runtime's **hidden helper threads** (Tian et al., LCPC'20 —
//! the paper's ref \[26\]), ordered by `depend(in/out/inout:)` clauses over
//! list items. This module implements that machinery: a dependency graph
//! keyed by [`DepKey`]s with OpenMP's flow/anti/output-dependence rules, a
//! helper-thread pool that drains ready tasks, `taskwait`, and per-task
//! handles.

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Identity of a `depend` list item. OpenMP resolves dependences by the
/// *location* of the item (the paper leans on this in §3.5); we use the
/// host address, or an arbitrary token for synthetic dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DepKey(pub u64);

impl DepKey {
    /// The dependence identity of a host slice (its base address).
    pub fn of_slice<T>(slice: &[T]) -> Self {
        DepKey(slice.as_ptr() as u64)
    }

    /// A synthetic dependence token.
    pub fn token(v: u64) -> Self {
        DepKey(v)
    }
}

type TaskId = u64;
type Work = Box<dyn FnOnce() + Send>;

struct TaskRecord {
    remaining_deps: usize,
    dependents: Vec<TaskId>,
    work: Option<Work>,
}

#[derive(Default)]
struct GraphState {
    tasks: HashMap<TaskId, TaskRecord>,
    completed: HashSet<TaskId>,
    /// Tasks whose work panicked (completed, but failed).
    panicked: HashSet<TaskId>,
    ready: VecDeque<TaskId>,
    /// Last task with an out/inout dependence per key.
    last_writers: HashMap<DepKey, TaskId>,
    /// Tasks with in dependences since the last writer, per key.
    readers: HashMap<DepKey, Vec<TaskId>>,
    next_id: TaskId,
    outstanding: usize,
    shutdown: bool,
}

struct TsInner {
    state: Mutex<GraphState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// The task system: dependency graph + hidden helper threads.
pub struct TaskSystem {
    inner: Arc<TsInner>,
}

impl TaskSystem {
    /// Create a system with `helpers` hidden helper threads (LLVM's default
    /// is 8; tests use fewer).
    pub fn new(helpers: usize) -> Self {
        let inner = Arc::new(TsInner {
            state: Mutex::new(GraphState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        for i in 0..helpers.max(1) {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("omp-hidden-helper-{i}"))
                .spawn(move || helper_loop(&inner))
                .expect("failed to spawn hidden helper thread");
        }
        TaskSystem { inner }
    }

    /// Submit a task with `in` and `out` dependence lists (an `inout` item
    /// appears in both). Returns a handle that can be waited on.
    pub fn submit(
        &self,
        ins: &[DepKey],
        outs: &[DepKey],
        work: impl FnOnce() + Send + 'static,
    ) -> TaskHandle {
        let mut st = self.inner.state.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.outstanding += 1;

        let mut deps: HashSet<TaskId> = HashSet::new();
        // Flow dependences: read-after-write.
        for key in ins {
            if let Some(&w) = st.last_writers.get(key) {
                if !st.completed.contains(&w) {
                    deps.insert(w);
                }
            }
        }
        // Output and anti dependences: write-after-write, write-after-read.
        for key in outs {
            if let Some(&w) = st.last_writers.get(key) {
                if !st.completed.contains(&w) {
                    deps.insert(w);
                }
            }
            if let Some(readers) = st.readers.get(key) {
                for &r in readers {
                    if !st.completed.contains(&r) {
                        deps.insert(r);
                    }
                }
            }
        }
        // Update the dependence bookkeeping for future tasks.
        for key in outs {
            st.last_writers.insert(*key, id);
            st.readers.remove(key);
        }
        for key in ins {
            st.readers.entry(*key).or_default().push(id);
        }

        let remaining = deps.len();
        for dep in &deps {
            if let Some(rec) = st.tasks.get_mut(dep) {
                rec.dependents.push(id);
            }
        }
        st.tasks.insert(
            id,
            TaskRecord {
                remaining_deps: remaining,
                dependents: Vec::new(),
                work: Some(Box::new(work)),
            },
        );
        if remaining == 0 {
            st.ready.push_back(id);
            self.inner.work_cv.notify_one();
        }
        TaskHandle { id, inner: Arc::clone(&self.inner) }
    }

    /// `#pragma omp taskwait` — block until every submitted task finished.
    /// Panics if any task panicked (the failure must not pass silently).
    pub fn wait_all(&self) {
        let mut st = self.inner.state.lock();
        while st.outstanding > 0 {
            self.inner.done_cv.wait(&mut st);
        }
        assert!(st.panicked.is_empty(), "{} task(s) panicked during execution", st.panicked.len());
    }

    /// Number of tasks not yet completed.
    pub fn outstanding(&self) -> usize {
        self.inner.state.lock().outstanding
    }
}

impl Drop for TaskSystem {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        st.shutdown = true;
        drop(st);
        self.inner.work_cv.notify_all();
    }
}

fn helper_loop(inner: &TsInner) {
    loop {
        let (id, work) = {
            let mut st = inner.state.lock();
            loop {
                if let Some(id) = st.ready.pop_front() {
                    let work = st
                        .tasks
                        .get_mut(&id)
                        .and_then(|r| r.work.take())
                        .expect("ready task must have work");
                    break (id, work);
                }
                if st.shutdown {
                    return;
                }
                inner.work_cv.wait(&mut st);
            }
        };
        // A panicking task must not kill the helper thread: the bookkeeping
        // below is what unblocks taskwait and every dependent task. Catch
        // the panic, complete the task as failed, and keep serving (the
        // panic is reported on stderr by the default hook; OpenMP's own
        // model would abort the whole program here, which would be worse
        // for a simulator host).
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(work)).is_err();
        let mut st = inner.state.lock();
        if panicked {
            st.panicked.insert(id);
        }
        st.completed.insert(id);
        st.outstanding -= 1;
        let dependents = st.tasks.remove(&id).map(|r| r.dependents).unwrap_or_default();
        for d in dependents {
            if let Some(rec) = st.tasks.get_mut(&d) {
                rec.remaining_deps -= 1;
                if rec.remaining_deps == 0 {
                    st.ready.push_back(d);
                    inner.work_cv.notify_one();
                }
            }
        }
        inner.done_cv.notify_all();
    }
}

/// Handle to one submitted task.
pub struct TaskHandle {
    id: TaskId,
    inner: Arc<TsInner>,
}

impl TaskHandle {
    /// Block until this task completes.
    pub fn wait(&self) {
        let mut st = self.inner.state.lock();
        while !st.completed.contains(&self.id) {
            self.inner.done_cv.wait(&mut st);
        }
    }

    /// True once the task has completed.
    pub fn is_done(&self) -> bool {
        self.inner.state.lock().completed.contains(&self.id)
    }

    /// True when the task completed by panicking.
    pub fn panicked(&self) -> bool {
        self.inner.state.lock().panicked.contains(&self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn independent_tasks_all_run() {
        let ts = TaskSystem::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            ts.submit(&[], &[], move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        ts.wait_all();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(ts.outstanding(), 0);
    }

    #[test]
    fn flow_dependence_orders_writer_before_reader() {
        let ts = TaskSystem::new(4);
        let key = DepKey::token(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for round in 0..20 {
            let l = Arc::clone(&log);
            ts.submit(&[], &[key], move || l.lock().push(format!("w{round}")));
            let l = Arc::clone(&log);
            ts.submit(&[key], &[], move || l.lock().push(format!("r{round}")));
        }
        ts.wait_all();
        let log = log.lock();
        // Every reader must appear after its writer.
        for round in 0..20 {
            let w = log.iter().position(|s| s == &format!("w{round}")).unwrap();
            let r = log.iter().position(|s| s == &format!("r{round}")).unwrap();
            assert!(w < r, "round {round}: writer at {w}, reader at {r}");
        }
    }

    #[test]
    fn output_dependence_serializes_writers() {
        let ts = TaskSystem::new(8);
        let key = DepKey::token(7);
        let value = Arc::new(AtomicUsize::new(0));
        for i in 1..=50 {
            let v = Arc::clone(&value);
            ts.submit(&[], &[key], move || v.store(i, Ordering::SeqCst));
        }
        ts.wait_all();
        // Writers on the same item are totally ordered: last write wins.
        assert_eq!(value.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn anti_dependence_reader_before_next_writer() {
        let ts = TaskSystem::new(8);
        let key = DepKey::token(9);
        let cell = Arc::new(AtomicUsize::new(1));
        let observed = Arc::new(AtomicUsize::new(0));
        // writer(1 -> already there), reader must see 1, writer sets 2.
        let o = Arc::clone(&observed);
        let c = Arc::clone(&cell);
        ts.submit(&[key], &[], move || {
            // Simulate a slow reader; the next writer must still wait.
            std::thread::sleep(std::time::Duration::from_millis(20));
            o.store(c.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        let c = Arc::clone(&cell);
        ts.submit(&[], &[key], move || c.store(2, Ordering::SeqCst));
        ts.wait_all();
        assert_eq!(observed.load(Ordering::SeqCst), 1);
        assert_eq!(cell.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn independent_readers_run_concurrently() {
        let ts = TaskSystem::new(4);
        let key = DepKey::token(3);
        // A writer, then two readers that must overlap: each waits for the
        // other through a shared rendezvous — it only works if both run at
        // the same time.
        ts.submit(&[], &[key], || {});
        let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
        for _ in 0..2 {
            let g = Arc::clone(&gate);
            ts.submit(&[key], &[], move || {
                let (lock, cv) = &*g;
                let mut n = lock.lock();
                *n += 1;
                cv.notify_all();
                while *n < 2 {
                    cv.wait(&mut n);
                }
            });
        }
        ts.wait_all();
    }

    #[test]
    fn handles_report_completion() {
        let ts = TaskSystem::new(2);
        let h = ts.submit(&[], &[], || {});
        h.wait();
        assert!(h.is_done());
    }

    #[test]
    fn panicking_task_does_not_deadlock_the_system() {
        let ts = TaskSystem::new(2);
        let key = DepKey::token(5);
        let downstream_ran = Arc::new(AtomicUsize::new(0));
        let bad = ts.submit(&[], &[key], || panic!("task body failed"));
        let dep = {
            let d = Arc::clone(&downstream_ran);
            ts.submit(&[key], &[], move || {
                d.fetch_add(1, Ordering::SeqCst);
            })
        };
        // wait_all must terminate (not hang) and report the failure.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ts.wait_all()));
        assert!(r.is_err(), "wait_all must surface the panicked task");
        assert!(bad.is_done() && bad.panicked());
        assert!(dep.is_done() && !dep.panicked());
        assert_eq!(downstream_ran.load(Ordering::SeqCst), 1, "dependents still run");
    }

    #[test]
    fn dep_keys_from_slices_are_stable() {
        let v = vec![0u8; 16];
        assert_eq!(DepKey::of_slice(&v), DepKey::of_slice(&v));
        let w = vec![0u8; 16];
        assert_ne!(DepKey::of_slice(&v), DepKey::of_slice(&w));
    }
}
