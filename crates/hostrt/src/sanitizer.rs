//! `ompx_sanitizer_*`: the host-API surface of the sanitizer subsystem.
//!
//! The paper's `ompx` extensions expose kernel-language features as host and
//! device APIs; the sanitizer follows the same pattern. These entry points
//! attach/detach a `ompx_sim::san::SanState` session on the runtime's
//! devices, so traditional `omp` target regions (and everything else that
//! launches through those devices) are observed without touching program
//! code. The full tool framework — named tools, reports, exit codes — lives
//! in the `ompx-sanitizer` crate; this module deliberately talks to the
//! simulator hooks directly so the host runtime does not depend on its own
//! tooling.

use crate::runtime::OpenMp;
use ompx_sim::san::{Diagnostic, SanState, ToolMask};
use std::sync::Arc;

/// Enable sanitizing on every device of `omp` with the tools in `mask`,
/// returning the shared session state. Replaces any previous session.
pub fn ompx_sanitizer_enable(omp: &OpenMp, mask: ToolMask) -> Arc<SanState> {
    let state = SanState::new(mask);
    for n in 0..omp.num_devices() {
        omp.device_n(n).attach_sanitizer(Arc::clone(&state));
    }
    state
}

/// Attach an existing session to every device of `omp` (e.g. one shared
/// with a native context so all launch layers report into one report).
pub fn ompx_sanitizer_attach(omp: &OpenMp, state: &Arc<SanState>) {
    for n in 0..omp.num_devices() {
        omp.device_n(n).attach_sanitizer(Arc::clone(state));
    }
}

/// Detach the session from every device and return its findings.
pub fn ompx_sanitizer_disable(omp: &OpenMp) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen_session = false;
    for n in 0..omp.num_devices() {
        if let Some(state) = omp.device_n(n).detach_sanitizer() {
            // All devices share one session when enabled through this API;
            // drain it only once.
            if !seen_session {
                out = state.diagnostics();
                seen_session = true;
            }
        }
    }
    out
}

/// Findings recorded so far on the default device's session, without
/// detaching (the `ompx_sanitizer_findings` query).
pub fn ompx_sanitizer_findings(omp: &OpenMp) -> Vec<Diagnostic> {
    omp.device().sanitizer().map(|s| s.diagnostics()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_query_disable_roundtrip() {
        let omp = OpenMp::test_system();
        let state = ompx_sanitizer_enable(&omp, ToolMask::ALL);
        assert!(omp.device().sanitizer().is_some());
        assert_eq!(state.finding_count(), 0);
        assert!(ompx_sanitizer_findings(&omp).is_empty());
        let findings = ompx_sanitizer_disable(&omp);
        assert!(findings.is_empty());
        assert!(omp.device().sanitizer().is_none());
    }
}
