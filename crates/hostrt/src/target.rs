//! Target regions: `#pragma omp target teams …` as a builder.
//!
//! A [`TargetRegion`] carries the clauses (`num_teams`, `thread_limit`,
//! shared-memory declarations, per-thread scratch subject to globalization)
//! and lowers the region body the way the modeled LLVM compiler/runtime
//! would:
//!
//! * a combined `distribute parallel for` loop normally becomes an **SPMD**
//!   kernel with the real launch geometry;
//! * kernels with a `force_generic` quirk (Stencil-1D, Adam — §4.2 of the
//!   paper) fall back to **generic mode**: one master per team executes the
//!   team's chunk while the state machine costs are charged;
//! * a `thread_cap` quirk (Adam's 32-thread bug) clamps the launch width;
//! * per-thread scratch is **globalized** — device-heap placement by
//!   default, shared memory when the `heap_to_shared` quirk applies
//!   (RSBench) — so the traffic consequences are measured.
//!
//! Synchronous by default, like the `target` construct; `nowait` variants
//! dispatch through the hidden-helper task system with `depend` keys.

use crate::error::OmpxError;
use crate::quirks::QuirkSet;
use crate::runtime::OpenMp;
use crate::task::{DepKey, TaskHandle};
use ompx_devicert::generic::{generic_kernel, generic_launch_config, GenericRegionConfig, TeamCtx};
use ompx_devicert::mode::ExecMode;
use ompx_devicert::spmd::{spmd_kernel, SpmdCtx};
use ompx_sim::counters::StatsSnapshot;
use ompx_sim::dim::LaunchConfig;
use ompx_sim::error::SimResult;
use ompx_sim::exec::Kernel;
use ompx_sim::mem::DBuf;
use ompx_sim::thread::ThreadCtx;
use ompx_sim::timing::{model_kernel, CodegenInfo, ModeledTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// How the region was actually launched after quirks were applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchPlan {
    pub mode: ExecMode,
    pub teams: u32,
    pub threads: u32,
    pub heap_to_shared: bool,
    /// The series must be flagged as excluded (paper's XSBench `omp`).
    pub invalid_result: bool,
}

/// Per-thread scratch storage the region needs (the storage class that is
/// subject to globalization in traditional OpenMP).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchSpec {
    /// `f64` elements of scratch per thread.
    pub f64_per_thread: usize,
}

/// Globalized per-thread scratch as seen inside the region body.
pub enum Scratch {
    /// No scratch requested.
    None,
    /// Globalized to the device heap: global-memory traffic.
    Heap { buf: DBuf<f64>, per_thread: usize },
    /// Heap-to-shared fired: shared-memory traffic.
    Shared { slot: usize, per_thread: usize },
}

impl Scratch {
    /// Scratch elements available per thread.
    pub fn per_thread(&self) -> usize {
        match self {
            Scratch::None => 0,
            Scratch::Heap { per_thread, .. } | Scratch::Shared { per_thread, .. } => *per_thread,
        }
    }

    #[inline]
    fn index(&self, tc: &ThreadCtx<'_>, j: usize) -> usize {
        match self {
            Scratch::None => unreachable!(),
            // Heap storage is per *global* thread; shared is per team thread.
            Scratch::Heap { per_thread, .. } => tc.global_rank() * per_thread + j,
            Scratch::Shared { per_thread, .. } => tc.thread_rank() * per_thread + j,
        }
    }

    /// Counted scratch load.
    #[inline]
    pub fn get(&self, tc: &mut ThreadCtx<'_>, j: usize) -> f64 {
        debug_assert!(j < self.per_thread(), "scratch index {j} out of range");
        match self {
            Scratch::None => panic!("scratch access without a ScratchSpec"),
            Scratch::Heap { buf, .. } => {
                let i = self.index(tc, j) % buf.len();
                tc.read(buf, i)
            }
            Scratch::Shared { slot, .. } => {
                let view = tc.shared::<f64>(*slot);
                let i = self.index(tc, j) % view.len();
                tc.sread(&view, i)
            }
        }
    }

    /// Counted scratch store.
    #[inline]
    pub fn set(&self, tc: &mut ThreadCtx<'_>, j: usize, v: f64) {
        debug_assert!(j < self.per_thread(), "scratch index {j} out of range");
        match self {
            Scratch::None => panic!("scratch access without a ScratchSpec"),
            Scratch::Heap { buf, .. } => {
                let i = self.index(tc, j) % buf.len();
                tc.write(buf, i, v)
            }
            Scratch::Shared { slot, .. } => {
                let view = tc.shared::<f64>(*slot);
                let i = self.index(tc, j) % view.len();
                tc.swrite(&view, i, v)
            }
        }
    }
}

/// Result of executing a target region.
#[derive(Debug, Clone)]
pub struct TargetResult {
    /// Counted events over the whole launch.
    pub stats: StatsSnapshot,
    /// Modeled execution time (device profile × codegen × mode overheads).
    pub modeled: ModeledTime,
    /// The launch plan that was used.
    pub plan: LaunchPlan,
}

/// Builder for one `target teams` region.
///
/// ```
/// use ompx_hostrt::OpenMp;
/// let omp = OpenMp::test_system();
/// let out = omp.device().alloc::<f32>(100);
/// // #pragma omp target teams distribute parallel for num_teams(4) thread_limit(16)
/// let result = omp
///     .target("double_it")
///     .num_teams(4)
///     .thread_limit(16)
///     .run_distribute_parallel_for(100, {
///         let out = out.clone();
///         move |tc, i, _scratch| tc.write(&out, i, i as f32 * 2.0)
///     })
///     .unwrap();
/// assert_eq!(out.get(7), 14.0);
/// assert!(result.modeled.seconds > 0.0);
/// ```
pub struct TargetRegion {
    omp: OpenMp,
    kernel_name: String,
    num_teams: Option<u32>,
    thread_limit: Option<u32>,
    scratch: ScratchSpec,
    offload: bool,
}

type DpfBody = Arc<dyn Fn(&mut ThreadCtx<'_>, usize, &Scratch) + Send + Sync>;

impl TargetRegion {
    pub(crate) fn new(omp: OpenMp, kernel_name: &str) -> Self {
        TargetRegion {
            omp,
            kernel_name: kernel_name.to_string(),
            num_teams: None,
            thread_limit: None,
            scratch: ScratchSpec::default(),
            offload: true,
        }
    }

    /// The `if(condition)` clause: when `condition` is false the region
    /// executes on the host instead of the device (OpenMP's conditional
    /// offload).
    pub fn when(mut self, condition: bool) -> Self {
        self.offload = condition;
        self
    }

    /// `num_teams(n)` clause (1-D; the multi-dimensional form is the ompx
    /// extension in the core crate).
    pub fn num_teams(mut self, n: u32) -> Self {
        self.num_teams = Some(n);
        self
    }

    /// `thread_limit(n)` clause.
    pub fn thread_limit(mut self, n: u32) -> Self {
        self.thread_limit = Some(n);
        self
    }

    /// Declare per-thread scratch storage (subject to globalization).
    pub fn scratch_f64(mut self, per_thread: usize) -> Self {
        self.scratch.f64_per_thread = per_thread;
        self
    }

    /// Resolve the launch plan this region would use (after quirks).
    pub fn plan(&self) -> LaunchPlan {
        let q: QuirkSet = self.omp.quirks().get(&self.kernel_name);
        let teams = self.num_teams.unwrap_or_else(|| self.omp.default_teams());
        let mut threads = self.thread_limit.unwrap_or_else(|| self.omp.default_threads());
        if let Some(cap) = q.thread_cap {
            threads = threads.min(cap);
        }
        threads = threads.min(self.omp.device().profile().max_threads_per_block);
        let mode = if !self.offload {
            ExecMode::Host
        } else if q.force_generic {
            ExecMode::Generic
        } else {
            ExecMode::Spmd
        };
        LaunchPlan {
            mode,
            teams: teams.max(1),
            threads: threads.max(1),
            heap_to_shared: q.heap_to_shared,
            invalid_result: q.invalid_result,
        }
    }

    /// Lower and synchronously execute a combined
    /// `distribute parallel for` over `0..n`.
    pub fn run_distribute_parallel_for(
        self,
        n: usize,
        body: impl Fn(&mut ThreadCtx<'_>, usize, &Scratch) + Send + Sync + 'static,
    ) -> SimResult<TargetResult> {
        if !self.offload {
            return Ok(self.run_on_host(n, &body));
        }
        self.prepare_dpf(n, Arc::new(body)).execute()
    }

    /// Host-fallback execution of the loop: every iteration runs serially
    /// on the host CPU; the modeled time uses a scalar host-core model
    /// (the initial device of real `libomp` would use host threads, but a
    /// single-core model keeps the conditional-offload cost conservative).
    fn run_on_host(
        self,
        n: usize,
        body: &impl Fn(&mut ThreadCtx<'_>, usize, &Scratch),
    ) -> TargetResult {
        use ompx_sim::dim::Dim3;
        use ompx_sim::shared::BlockShared;

        let plan = LaunchPlan {
            mode: ExecMode::Host,
            teams: 1,
            threads: 1,
            heap_to_shared: false,
            invalid_result: false,
        };
        let shared = BlockShared::new(&[]);
        let mut tc = ThreadCtx::detached(
            Dim3::x(1),
            Dim3::x(1),
            (0, 0, 0),
            (0, 0, 0),
            self.omp.device().profile().warp_size,
            &shared,
        );
        let scratch = if self.scratch.f64_per_thread > 0 {
            Scratch::Heap {
                buf: self.omp.device().alloc::<f64>(self.scratch.f64_per_thread),
                per_thread: self.scratch.f64_per_thread,
            }
        } else {
            Scratch::None
        };
        for i in 0..n {
            body(&mut tc, i, &scratch);
        }
        let c = &tc.counters;
        let stats = ompx_sim::counters::StatsSnapshot {
            flops: c.flops,
            int_ops: c.int_ops,
            global_load_bytes: c.global_load_bytes,
            global_store_bytes: c.global_store_bytes,
            shared_accesses: c.shared_accesses,
            barriers: c.barriers,
            warp_ops: c.warp_ops,
            atomic_ops: c.atomic_ops,
            divergent_branches: c.divergent_branches,
            serial_ops: c.serial_ops,
            const_reads: c.const_reads,
            uniform_load_bytes: c.uniform_load_bytes,
            threads_executed: 1,
            blocks_executed: 1,
        };

        let seconds = host_model_seconds(&stats);
        let modeled = ompx_sim::timing::ModeledTime { seconds, ..Default::default() };
        TargetResult { stats, modeled, plan }
    }

    /// `distribute parallel for reduction(+: acc)` over `0..n`: every
    /// iteration's value is summed. Lowered the way LLVM lowers GPU
    /// reductions, but deterministically: each team commits its partial
    /// into its own cell of a per-team scratch buffer and the host combines
    /// the partials in team-linear order. A single shared accumulator would
    /// sum the non-associative float partials in whatever order the OS
    /// scheduled the teams, so repeated runs could drift bit-by-bit.
    /// Returns the reduction value alongside the target result.
    pub fn run_reduce_sum(
        self,
        n: usize,
        body: impl Fn(&mut ThreadCtx<'_>, usize) -> f64 + Send + Sync + 'static,
    ) -> SimResult<(f64, TargetResult)> {
        let plan = self.plan();
        if plan.mode == ExecMode::Host {
            // if(false): the reduction runs on the host, serially on this
            // thread, so a plain Cell accumulates safely.
            let acc = std::cell::Cell::new(0.0f64);
            let result = self.run_on_host(n, &|tc: &mut ThreadCtx<'_>, i: usize, _s: &Scratch| {
                acc.set(acc.get() + body(tc, i));
            });
            return Ok((acc.get(), result));
        }
        let partials = self.omp.device().alloc::<f64>(plan.teams.max(1) as usize);
        let body = Arc::new(body);

        let (kernel, cfg) = match plan.mode {
            ExecMode::Generic => {
                let teams = plan.teams as usize;
                let chunk = n.div_ceil(teams.max(1));
                let partials2 = partials.clone();
                let body = Arc::clone(&body);
                let k = generic_kernel(
                    self.kernel_name.clone(),
                    self.omp.device(),
                    GenericRegionConfig::new(plan.threads),
                    move |team: &mut TeamCtx<'_, '_>| {
                        let lo = (team.team_num() * chunk).min(n);
                        let hi = (lo + chunk).min(n);
                        let body = &body;
                        let partial = team.parallel_for_reduce(
                            hi - lo,
                            0.0f64,
                            |tc, i| body(tc, lo + i),
                            |a, b| a + b,
                        );
                        let slot = team.team_num();
                        team.thread().atomic_add(&partials2, slot, partial);
                    },
                );
                (k, generic_launch_config(teams))
            }
            _ => {
                let partials2 = partials.clone();
                let body = Arc::clone(&body);
                let k = spmd_kernel(self.kernel_name.clone(), move |ctx: &mut SpmdCtx<'_, '_>| {
                    let body = &body;
                    let partial = ctx.distribute_parallel_for_reduce(
                        n,
                        0.0f64,
                        |tc, i| body(tc, i),
                        |a, b| a + b,
                    );
                    let slot = ctx.team_num();
                    ctx.thread().atomic_add(&partials2, slot, partial);
                });
                (k, LaunchConfig::new(plan.teams, plan.threads))
            }
        };

        let prepared = PreparedTarget {
            omp: self.omp,
            kernel_name: self.kernel_name,
            kernel,
            cfg,
            plan,
            scratch_shared_bytes: 0,
        };
        let result = prepared.execute()?;
        Ok((partials.to_vec().iter().sum(), result))
    }

    /// `nowait` variant: dispatch as a target task on the hidden helper
    /// threads, ordered by `depend` keys. The result is retrievable from
    /// the returned handle after completion.
    pub fn run_dpf_nowait(
        self,
        deps_in: &[DepKey],
        deps_out: &[DepKey],
        n: usize,
        body: impl Fn(&mut ThreadCtx<'_>, usize, &Scratch) + Send + Sync + 'static,
    ) -> NowaitTarget {
        let omp = self.omp.clone();
        let slot: Arc<Mutex<Option<SimResult<TargetResult>>>> = Arc::new(Mutex::new(None));
        let slot2 = Arc::clone(&slot);
        // Submission is instantaneous on the host track; the flow arrow
        // connects it to the task's span on the helper-thread track.
        let flow = ompx_sim::span::active().map(|log| {
            log.host_op_flow(
                &format!("nowait {}", self.kernel_name),
                ompx_sim::span::SpanCategory::Task,
                0.0,
                0,
            )
        });
        if !self.offload {
            // if(false) + nowait: a host task executes the region body.
            let name = self.kernel_name.clone();
            let handle = omp.inner.tasks.submit(deps_in, deps_out, move || {
                let r = self.run_on_host(n, &body);
                if let Some(log) = ompx_sim::span::active() {
                    log.task_span(&name, r.modeled.seconds, flow);
                }
                *slot2.lock() = Some(Ok(r));
            });
            return NowaitTarget { handle, result: slot };
        }
        let prepared = self.prepare_dpf(n, Arc::new(body));
        let handle = omp.inner.tasks.submit(deps_in, deps_out, move || {
            *slot2.lock() = Some(prepared.execute_as_task(flow));
        });
        NowaitTarget { handle, result: slot }
    }

    /// Lower the loop but do not run it: used by the `nowait`/stream paths.
    pub fn prepare_dpf(self, n: usize, body: DpfBody) -> PreparedTarget {
        let plan = self.plan();
        let mut cfg;
        let scratch_shared_bytes;
        let scratch: Arc<ScratchFactory>;

        if plan.heap_to_shared && self.scratch.f64_per_thread > 0 {
            // One shared slot per block holding every team thread's scratch.
            let per = self.scratch.f64_per_thread;
            let elems = per * plan.threads as usize;
            scratch_shared_bytes = elems * 8;
            match plan.mode {
                ExecMode::Generic => {
                    cfg = generic_launch_config(plan.teams as usize);
                }
                _ => {
                    cfg = LaunchConfig::new(plan.teams, plan.threads);
                }
            }
            let slot = cfg.shared_array::<f64>(elems);
            scratch = Arc::new(move || Scratch::Shared { slot, per_thread: per });
        } else {
            match plan.mode {
                ExecMode::Generic => cfg = generic_launch_config(plan.teams as usize),
                _ => cfg = LaunchConfig::new(plan.teams, plan.threads),
            }
            scratch_shared_bytes = 0;
            if self.scratch.f64_per_thread > 0 {
                // Globalized to the device heap: one slice per thread of the
                // modeled launch.
                let per = self.scratch.f64_per_thread;
                let total = per * (plan.teams as usize) * (plan.threads as usize);
                let buf = self.omp.device().alloc::<f64>(total.max(per));
                scratch = Arc::new(move || Scratch::Heap { buf: buf.clone(), per_thread: per });
            } else {
                scratch = Arc::new(|| Scratch::None);
            }
        }

        let kernel = match plan.mode {
            ExecMode::Generic => {
                let body = Arc::clone(&body);
                let scratch = Arc::clone(&scratch);
                let teams = plan.teams as usize;
                let chunk = n.div_ceil(teams.max(1));
                generic_kernel(
                    self.kernel_name.clone(),
                    self.omp.device(),
                    GenericRegionConfig::new(plan.threads),
                    move |team: &mut TeamCtx<'_, '_>| {
                        let s = scratch();
                        let lo = (team.team_num() * chunk).min(n);
                        let hi = (lo + chunk).min(n);
                        let body = &body;
                        team.parallel_for(hi - lo, |tc, i| body(tc, lo + i, &s));
                    },
                )
            }
            _ => {
                let body = Arc::clone(&body);
                let scratch = Arc::clone(&scratch);
                spmd_kernel(self.kernel_name.clone(), move |ctx: &mut SpmdCtx<'_, '_>| {
                    let s = scratch();
                    let body = &body;
                    ctx.distribute_parallel_for(n, |tc, i| body(tc, i, &s));
                })
            }
        };

        PreparedTarget {
            omp: self.omp,
            kernel_name: self.kernel_name,
            kernel,
            cfg,
            plan,
            scratch_shared_bytes,
        }
    }
}

type ScratchFactory = dyn Fn() -> Scratch + Send + Sync;

/// Modeled wall time of running a counted workload serially on one host
/// core (~3 GHz, ~25 GB/s single-stream) — used for the `if(false)`
/// conditional-offload path and for device-loss fallback (also by the
/// core crate's bare-target fallback).
pub fn host_model_seconds(stats: &StatsSnapshot) -> f64 {
    const HOST_OPS_PER_S: f64 = 3.0e9;
    const HOST_BYTES_PER_S: f64 = 25.0e9;
    let ops = (stats.flops
        + stats.int_ops
        + stats.shared_accesses
        + stats.atomic_ops
        + stats.const_reads) as f64;
    let bytes = stats.global_bytes() as f64;
    ops / HOST_OPS_PER_S + bytes / HOST_BYTES_PER_S
}

/// A fully lowered target region, ready to execute (possibly repeatedly or
/// asynchronously).
#[derive(Clone)]
pub struct PreparedTarget {
    omp: OpenMp,
    kernel_name: String,
    kernel: Kernel,
    cfg: LaunchConfig,
    plan: LaunchPlan,
    scratch_shared_bytes: usize,
}

impl PreparedTarget {
    /// Execute synchronously and model the result.
    ///
    /// Infallible wrapper over [`PreparedTarget::try_execute`]: the
    /// historical `SimResult` signature is preserved so existing callers
    /// (the whole benchmark suite) compile unchanged.
    pub fn execute(&self) -> SimResult<TargetResult> {
        self.try_execute().map_err(OmpxError::into_sim)
    }

    /// Execute synchronously with the typed host-runtime error.
    ///
    /// Injected transient faults are retried under the device's
    /// [`ompx_sim::fault::RetryPolicy`]; a lost device re-dispatches the
    /// region through the host-fallback path (see
    /// [`PreparedTarget::execute_host_fallback`]).
    pub fn try_execute(&self) -> Result<TargetResult, OmpxError> {
        let r = self.try_execute_quiet()?;
        // A synchronous target region blocks the submitting thread for its
        // modeled duration — one kernel bar on the profiler's host track.
        if let Some(log) = ompx_sim::span::active() {
            log.host_op(
                &self.kernel_name,
                ompx_sim::span::SpanCategory::Kernel,
                r.modeled.seconds,
                0,
            );
        }
        Ok(r)
    }

    /// Execute without host-track span emission (the `nowait` task path
    /// records a helper-thread span instead).
    fn try_execute_quiet(&self) -> Result<TargetResult, OmpxError> {
        let device = self.omp.device();
        let policy = device.retry_policy();
        match ompx_sim::fault::run_with_retry(device, &policy, &self.kernel_name, || {
            device.launch(&self.kernel, self.cfg.clone())
        }) {
            Ok(stats) => {
                let r = self.model(&stats);
                // Report the runtime's modeled time into the device launch
                // trace (overwrites the device's default-codegen estimate).
                device.trace().attribute_model(&self.kernel_name, r.modeled.seconds);
                Ok(r)
            }
            // Injected faults that survived the retry budget (device loss,
            // a persistent launch fault): degrade to the host rather than
            // fail the region. Most launch faults fire *before* any kernel
            // side effects; a watchdog timeout leaves a committed partial
            // block prefix, which the fallback erases by restoring the
            // device's pre-launch checkpoint before re-dispatching.
            Err(e) if e.is_injected() => self.execute_host_fallback(&e),
            Err(e) if e.is_transient() => Err(OmpxError::RetriesExhausted {
                op: self.kernel_name.clone(),
                attempts: policy.max_attempts,
                last: e,
            }),
            Err(e) => Err(OmpxError::Device(e)),
        }
    }

    /// Re-dispatch the region through the host-fallback path after a
    /// non-recoverable injected fault.
    ///
    /// The lowered kernel is reused functionally — simulated device memory
    /// is host-backed, so running it outside the fault gate produces
    /// bit-identical results by construction — but the time model charges
    /// a serial host core, and the reported plan says `ExecMode::Host`
    /// with a 1×1 geometry, matching what a real runtime's `if(false)`
    /// path would report.
    fn execute_host_fallback(
        &self,
        cause: &ompx_sim::error::SimError,
    ) -> Result<TargetResult, OmpxError> {
        let device = self.omp.device();
        if let Some(f) = device.faults() {
            f.note_fallback(&self.kernel_name);
        }
        // A watchdog timeout committed a partial block prefix; restore the
        // pre-launch checkpoint so the host re-dispatch computes from clean
        // state. No-op for side-effect-free faults.
        device.restore_checkpoint(self.kernel.name());
        let stats =
            device.launch_unchecked(&self.kernel, self.cfg.clone()).map_err(OmpxError::Device)?;
        let seconds = host_model_seconds(&stats);
        if let Some(log) = ompx_sim::span::active() {
            // Emitted after the re-dispatch so the fallback bar spans its
            // modeled host duration instead of rendering zero-width.
            log.host_op(
                &format!("fallback {} ({cause})", self.kernel_name),
                ompx_sim::span::SpanCategory::Fallback,
                seconds,
                0,
            );
        }
        let plan = LaunchPlan {
            mode: ExecMode::Host,
            teams: 1,
            threads: 1,
            heap_to_shared: false,
            invalid_result: self.plan.invalid_result,
        };
        let modeled = ompx_sim::timing::ModeledTime { seconds, ..Default::default() };
        Ok(TargetResult { stats, modeled, plan })
    }

    /// Like [`PreparedTarget::execute`], but recording the kernel span on
    /// the profiler's helper-thread (task) track with `flow` as the
    /// incoming dependence arrow — the `nowait` dispatch path.
    pub(crate) fn execute_as_task(&self, flow: Option<u64>) -> SimResult<TargetResult> {
        let r = self.try_execute_quiet().map_err(OmpxError::into_sim)?;
        if let Some(log) = ompx_sim::span::active() {
            log.task_span(&self.kernel_name, r.modeled.seconds, flow);
        }
        Ok(r)
    }

    /// Model a statistics snapshot (possibly scaled) for this region.
    pub fn model(&self, stats: &StatsSnapshot) -> TargetResult {
        let cg = self.omp.codegen().lookup_vendor(
            &self.kernel_name,
            self.omp.device().profile().vendor,
            self.omp.toolchain(),
            CodegenInfo::default(),
        );
        let smem = self.cfg.shared_bytes_per_block().max(self.scratch_shared_bytes);
        // The modeled geometry is the plan's (generic mode simulates one
        // master per team, but the hardware runs `threads` per team).
        let modeled = model_kernel(
            self.omp.device().profile(),
            self.plan.threads,
            stats.blocks_executed.max(self.plan.teams as u64),
            smem,
            stats,
            &cg,
            &self.plan.mode.overheads(),
        );
        TargetResult { stats: *stats, modeled, plan: self.plan }
    }

    /// The resolved launch plan.
    pub fn plan(&self) -> LaunchPlan {
        self.plan
    }

    /// The kernel name (for codegen registration and diagnostics).
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }
}

/// Handle to a `nowait` target task.
pub struct NowaitTarget {
    handle: TaskHandle,
    result: Arc<Mutex<Option<SimResult<TargetResult>>>>,
}

impl NowaitTarget {
    /// Wait for the target task and take its result.
    pub fn wait(self) -> SimResult<TargetResult> {
        self.handle.wait();
        // Task-system invariant, not host-side misuse: the submitted
        // closure always stores a result before the handle completes, so a
        // missing slot is a runtime bug and deliberately panics (see the
        // error-policy note in ompx-sim's error.rs).
        self.result.lock().take().expect("completed target task must have a result")
    }

    /// True once the target task finished.
    pub fn is_done(&self) -> bool {
        self.handle.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quirks::QuirkSet;

    #[test]
    fn spmd_dpf_computes_and_models() {
        let omp = OpenMp::test_system();
        let n = 1000;
        let a = omp.device().alloc_from(&(0..n).map(|i| i as f32).collect::<Vec<_>>());
        let b = omp.device().alloc::<f32>(n);
        let r = omp
            .target("vadd")
            .num_teams(8)
            .thread_limit(64)
            .run_distribute_parallel_for(n, {
                let (a, b) = (a.clone(), b.clone());
                move |tc, i, _s| {
                    let v = tc.read(&a, i);
                    tc.flops(1);
                    tc.write(&b, i, v + 1.0);
                }
            })
            .unwrap();
        assert_eq!(r.plan.mode, ExecMode::Spmd);
        assert_eq!(r.stats.flops, n as u64);
        assert!(r.modeled.seconds > 0.0);
        assert_eq!(b.to_vec()[999], 1000.0);
    }

    #[test]
    fn force_generic_quirk_changes_mode_not_results() {
        let omp = OpenMp::test_system();
        omp.quirks().set("gen_loop", QuirkSet { force_generic: true, ..Default::default() });
        let n = 500;
        let run = |name: &str| {
            let out = omp.device().alloc::<u32>(n);
            let r = omp
                .target(name)
                .num_teams(4)
                .thread_limit(32)
                .run_distribute_parallel_for(n, {
                    let out = out.clone();
                    move |tc, i, _s| tc.write(&out, i, (i * 3) as u32)
                })
                .unwrap();
            (out.to_vec(), r)
        };
        let (v1, r1) = run("gen_loop");
        let (v2, r2) = run("plain_loop");
        assert_eq!(v1, v2);
        assert_eq!(r1.plan.mode, ExecMode::Generic);
        assert_eq!(r2.plan.mode, ExecMode::Spmd);
        // Generic mode must cost more (state machine + per-block overheads).
        assert!(r1.modeled.seconds > r2.modeled.seconds);
        assert!(r1.stats.barriers > r2.stats.barriers);
    }

    #[test]
    fn thread_cap_quirk_reduces_width() {
        let omp = OpenMp::test_system();
        omp.quirks().set("capped", QuirkSet { thread_cap: Some(8), ..Default::default() });
        let plan = omp.target("capped").num_teams(2).thread_limit(64).plan();
        assert_eq!(plan.threads, 8);
        let plan = omp.target("uncapped").num_teams(2).thread_limit(64).plan();
        assert_eq!(plan.threads, 64);
    }

    #[test]
    fn scratch_heap_counts_global_traffic() {
        let omp = OpenMp::test_system();
        let n = 64;
        let r = omp
            .target("scratchy")
            .num_teams(2)
            .thread_limit(16)
            .scratch_f64(4)
            .run_distribute_parallel_for(n, move |tc, i, s| {
                for j in 0..4 {
                    s.set(tc, j, (i + j) as f64);
                }
                let mut acc = 0.0;
                for j in 0..4 {
                    acc += s.get(tc, j);
                }
                assert_eq!(acc, (4 * i + 6) as f64);
            })
            .unwrap();
        // 64 iterations x 4 stores + 4 loads of f64.
        assert_eq!(r.stats.global_store_bytes, 64 * 4 * 8);
        assert_eq!(r.stats.global_load_bytes, 64 * 4 * 8);
        assert_eq!(r.stats.shared_accesses, 0);
    }

    #[test]
    fn scratch_heap_to_shared_moves_traffic() {
        let omp = OpenMp::test_system();
        omp.quirks().set("shiny", QuirkSet { heap_to_shared: true, ..Default::default() });
        let n = 64;
        let r = omp
            .target("shiny")
            .num_teams(2)
            .thread_limit(16)
            .scratch_f64(4)
            .run_distribute_parallel_for(n, move |tc, i, s| {
                s.set(tc, 0, i as f64);
                assert_eq!(s.get(tc, 0), i as f64);
            })
            .unwrap();
        assert_eq!(r.stats.shared_accesses, 64 * 2);
        assert_eq!(r.stats.global_store_bytes, 0);
        assert!(r.plan.heap_to_shared);
    }

    #[test]
    fn if_clause_falls_back_to_the_host() {
        let omp = OpenMp::test_system();
        let n = 300;
        let run_with = |offload: bool| {
            let out = omp.device().alloc::<f32>(n);
            let r = omp
                .target("conditional")
                .num_teams(4)
                .thread_limit(16)
                .when(offload)
                .run_distribute_parallel_for(n, {
                    let out = out.clone();
                    move |tc, i, _s| {
                        tc.flops(1);
                        tc.write(&out, i, i as f32 + 0.5);
                    }
                })
                .unwrap();
            (out.to_vec(), r)
        };
        let (host_vals, host_r) = run_with(false);
        let (dev_vals, dev_r) = run_with(true);
        assert_eq!(host_vals, dev_vals, "host fallback must compute the same results");
        assert_eq!(host_r.plan.mode, ExecMode::Host);
        assert_eq!(host_r.plan.teams, 1);
        assert_eq!(dev_r.plan.mode, ExecMode::Spmd);
        // The host path is serial: one executed "thread".
        assert_eq!(host_r.stats.threads_executed, 1);
        assert!(host_r.modeled.seconds > 0.0);
    }

    #[test]
    fn if_clause_covers_reduce_and_nowait_paths() {
        let omp = OpenMp::test_system();
        let n = 100;
        // reduction(+:) with if(false): host execution, same value.
        let (sum, r) =
            omp.target("host_reduce").when(false).run_reduce_sum(n, |_tc, i| i as f64).unwrap();
        assert_eq!(sum, (0..n).map(|i| i as f64).sum::<f64>());
        assert_eq!(r.plan.mode, ExecMode::Host);

        // nowait with if(false): a host task, still ordered by depends.
        let out = omp.device().alloc::<f32>(n);
        let t = omp.target("host_nowait").when(false).run_dpf_nowait(&[], &[], n, {
            let out = out.clone();
            move |tc, i, _s| tc.write(&out, i, i as f32)
        });
        let res = t.wait().unwrap();
        assert_eq!(res.plan.mode, ExecMode::Host);
        assert_eq!(out.get(n - 1), (n - 1) as f32);
    }

    #[test]
    fn reduction_sum_matches_reference_in_both_modes() {
        let omp = OpenMp::test_system();
        omp.quirks().set("red_gen", QuirkSet { force_generic: true, ..Default::default() });
        let n = 1234;
        let data = omp.device().alloc_from(&(0..n).map(|i| i as f64).collect::<Vec<_>>());
        let expect: f64 = (0..n).map(|i| i as f64).sum();
        for name in ["red_spmd", "red_gen"] {
            let (sum, r) = omp
                .target(name)
                .num_teams(4)
                .thread_limit(32)
                .run_reduce_sum(n, {
                    let data = data.clone();
                    move |tc, i| tc.read(&data, i)
                })
                .unwrap();
            assert_eq!(sum, expect, "{name}");
            assert!(r.stats.atomic_ops > 0, "{name}: reductions combine atomically");
        }
    }

    #[test]
    fn nowait_with_dependences() {
        let omp = OpenMp::test_system();
        let n = 100;
        let buf = omp.device().alloc::<f32>(n);
        let key = DepKey::token(42);
        // Producer writes i, consumer doubles it; depend(out) then
        // depend(in) must order them.
        let t1 =
            omp.target("producer").num_teams(2).thread_limit(16).run_dpf_nowait(&[], &[key], n, {
                let buf = buf.clone();
                move |tc, i, _s| tc.write(&buf, i, i as f32)
            });
        let t2 =
            omp.target("consumer").num_teams(2).thread_limit(16).run_dpf_nowait(&[key], &[], n, {
                let buf = buf.clone();
                move |tc, i, _s| {
                    let v = tc.read(&buf, i);
                    tc.write(&buf, i, v * 2.0);
                }
            });
        t1.wait().unwrap();
        t2.wait().unwrap();
        omp.taskwait();
        let out = buf.to_vec();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32);
        }
    }

    #[test]
    fn invalid_result_flag_surfaces_in_plan() {
        let omp = OpenMp::test_system();
        omp.quirks().set("broken", QuirkSet { invalid_result: true, ..Default::default() });
        assert!(omp.target("broken").plan().invalid_result);
    }

    #[test]
    fn prepared_target_is_reusable() {
        let omp = OpenMp::test_system();
        let acc = omp.device().alloc::<u32>(1);
        let prepared = omp.target("iter").num_teams(1).thread_limit(8).prepare_dpf(8, {
            let acc = acc.clone();
            Arc::new(move |tc: &mut ThreadCtx<'_>, _i, _s: &Scratch| {
                tc.atomic_add(&acc, 0, 1);
            })
        });
        for _ in 0..5 {
            prepared.execute().unwrap();
        }
        assert_eq!(acc.get(0), 40);
    }
}
