//! `OmpxError`: the typed error of the fallible host-runtime APIs.
//!
//! The infallible host APIs (`ompx_malloc`, `ompx_memcpy_h2d`,
//! `PreparedTarget::execute`, …) keep their historical signatures — the
//! 24-cell benchmark suite compiles unchanged — but are thin wrappers over
//! `try_` variants returning `Result<_, OmpxError>`. The wrapper layer
//! retries transient faults under the device's
//! [`ompx_sim::fault::RetryPolicy`] and degrades gracefully when the
//! retries run out; the `try_` layer surfaces the typed error instead.

use ompx_sim::error::SimError;
use std::fmt;

/// Error of a fallible host-runtime operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmpxError {
    /// The underlying device operation failed (not retried, or not
    /// retryable).
    Device(SimError),
    /// A transient fault persisted through every attempt the retry policy
    /// allowed.
    RetriesExhausted {
        /// What was being retried (kernel or API name).
        op: String,
        /// Attempts made (the policy's budget).
        attempts: u32,
        /// The failure of the final attempt.
        last: SimError,
    },
}

impl OmpxError {
    /// The underlying simulator error (the final one, for exhausted
    /// retries) — used by the infallible wrappers that keep `SimResult`
    /// signatures.
    pub fn into_sim(self) -> SimError {
        match self {
            OmpxError::Device(e) => e,
            OmpxError::RetriesExhausted { last, .. } => last,
        }
    }

    /// A reference to the underlying simulator error.
    pub fn sim_error(&self) -> &SimError {
        match self {
            OmpxError::Device(e) => e,
            OmpxError::RetriesExhausted { last, .. } => last,
        }
    }
}

impl fmt::Display for OmpxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmpxError::Device(e) => write!(f, "device error: {e}"),
            OmpxError::RetriesExhausted { op, attempts, last } => {
                write!(f, "{op} failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for OmpxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.sim_error())
    }
}

impl From<SimError> for OmpxError {
    fn from(e: SimError) -> Self {
        OmpxError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_carry_the_inner_error() {
        let inner = SimError::EccTransient { op: "memcpy H2D".into() };
        let e = OmpxError::RetriesExhausted { op: "memcpy H2D".into(), attempts: 4, last: inner };
        let msg = e.to_string();
        assert!(msg.contains("4 attempts"), "{msg}");
        assert!(msg.contains("ECC"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
        assert!(matches!(e.into_sim(), SimError::EccTransient { .. }));

        let d: OmpxError = SimError::DeviceLost { device: 1 }.into();
        assert!(d.to_string().contains("device 1 lost"));
        assert!(matches!(d.into_sim(), SimError::DeviceLost { device: 1 }));
    }
}
