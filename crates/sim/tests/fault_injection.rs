//! End-to-end fault injection through the public device API: retry
//! recovery, sticky-error semantics, corruption repair, device loss, and
//! the fault-free zero-overhead baseline.

use ompx_sim::device::{Device, DeviceProfile};
use ompx_sim::dim::LaunchConfig;
use ompx_sim::exec::Kernel;
use ompx_sim::prelude::*;

fn device() -> Device {
    Device::new(DeviceProfile::test_small())
}

fn fill_kernel(out: &ompx_sim::mem::DBuf<u32>, n: usize) -> Kernel {
    let out = out.clone();
    Kernel::new("fill", move |tc| {
        let i = tc.global_thread_id_x();
        if i < n {
            tc.write(&out, i, (i * 2) as u32);
        }
    })
}

#[test]
fn injected_launch_fault_recovers_via_retry_with_span_evidence() {
    let d = device();
    let plan = FaultPlan::none().with_injection(FaultSite::Launch, 0, FaultKind::LaunchFail);
    let faults = FaultState::new(plan);
    d.attach_faults(std::sync::Arc::clone(&faults));

    let n = 64usize;
    let out = d.alloc::<u32>(n);
    let kernel = fill_kernel(&out, n);
    let log = SpanLog::new();
    let prev = SpanLog::install(std::sync::Arc::clone(&log));

    let policy = d.retry_policy();
    let stats =
        run_with_retry(&d, &policy, "fill", || d.launch(&kernel, LaunchConfig::new(2u32, 32u32)))
            .expect("the default retry budget must outlast a single-shot injection");
    match prev {
        Some(p) => drop(SpanLog::install(p)),
        None => drop(SpanLog::uninstall()),
    }
    assert_eq!(stats.threads_executed, 64);
    assert_eq!(out.to_vec()[10], 20);

    let snap = faults.snapshot();
    assert_eq!(snap.recovered, 1);
    assert_eq!(snap.injected.len(), 1);
    assert!(matches!(snap.injected[0].kind, FaultKind::LaunchFail));

    // The retry and the recovery are visible on the span timeline.
    let spans = log.spans();
    let retries: Vec<_> = spans.iter().filter(|s| s.cat == SpanCategory::Retry).collect();
    assert!(
        retries.iter().any(|s| s.name.contains("retry fill #1")),
        "expected a retry span, got {:?}",
        retries.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    assert!(retries.iter().any(|s| s.name.contains("recovered fill")));
    // No error left behind: the operation ultimately succeeded.
    assert!(d.peek_last_error().is_none());
}

#[test]
fn memcpy_corruption_is_repaired_by_the_retry() {
    let d = device();
    let plan = FaultPlan::none().with_injection(FaultSite::MemcpyH2D, 0, FaultKind::MemcpyCorrupt);
    d.attach_faults(FaultState::new(plan));

    let src: Vec<u32> = (0..256).collect();
    let dst = d.alloc::<u32>(256);
    // First attempt copies-then-corrupts one element; the recopy repairs it.
    let policy = d.retry_policy();
    run_with_retry(&d, &policy, "h2d", || d.try_memcpy_h2d(&dst, &src)).unwrap();
    assert_eq!(dst.to_vec(), src);
}

#[test]
fn single_failed_attempt_observes_the_corruption() {
    let d = device();
    let plan = FaultPlan::none().with_injection(FaultSite::MemcpyH2D, 0, FaultKind::MemcpyCorrupt);
    d.attach_faults(FaultState::new(plan));

    let src: Vec<u32> = (0..16).collect();
    let dst = d.alloc::<u32>(16);
    let err = d.try_memcpy_h2d(&dst, &src).unwrap_err();
    assert!(matches!(err, SimError::MemcpyFault { corrupted: true, .. }), "got {err}");
    // Exactly one element differs by exactly one bit.
    let diff: Vec<usize> = dst
        .to_vec()
        .iter()
        .zip(&src)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(diff.len(), 1, "one deterministic element must be bit-flipped");
    let i = diff[0];
    assert_eq!(dst.get(i) ^ src[i], 1);
}

#[test]
fn device_loss_is_sticky_and_survives_get() {
    let d = device();
    let buf = d.alloc::<u32>(4);
    d.attach_faults(FaultState::new(FaultPlan::none().with_device_loss_at(0)));

    let err = d.try_alloc::<f32>(8).unwrap_err();
    assert!(matches!(err, SimError::DeviceLost { .. }));
    assert!(d.is_lost());

    // Everything after the loss fails the same way.
    assert!(matches!(d.try_memcpy_h2d(&buf, &[1, 2]).unwrap_err(), SimError::DeviceLost { .. }));

    // Sticky semantics: record once, peek and take both keep returning it.
    d.record_error(SimError::DeviceLost { device: d.id() });
    // A later transient error must not displace the sticky one.
    d.record_error(SimError::EccTransient { op: "x".into() });
    assert!(matches!(d.peek_last_error(), Some(SimError::DeviceLost { .. })));
    assert!(matches!(d.take_last_error(), Some(SimError::DeviceLost { .. })));
    assert!(
        matches!(d.take_last_error(), Some(SimError::DeviceLost { .. })),
        "sticky survives take"
    );

    // reset() clears even sticky errors (cudaDeviceReset semantics).
    d.reset();
    assert!(d.peek_last_error().is_none());
}

#[test]
fn transient_error_is_cleared_by_take_but_not_peek() {
    let d = device();
    d.record_error(SimError::EccTransient { op: "launch of k".into() });
    assert!(d.peek_last_error().is_some());
    assert!(d.peek_last_error().is_some(), "peek never clears");
    assert!(d.take_last_error().is_some());
    assert!(d.take_last_error().is_none(), "take clears non-sticky errors");
}

#[test]
fn fault_free_plan_is_bit_identical_to_no_faults_at_all() {
    let run = |attach_quiet: bool| {
        let d = device();
        if attach_quiet {
            d.attach_faults(FaultState::new(FaultPlan::none()));
        }
        let n = 128usize;
        let src: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let a = d.alloc_from(&src);
        let b = d.alloc::<u32>(n);
        let k = {
            let (a, b) = (a.clone(), b.clone());
            Kernel::new("xform", move |tc| {
                let i = tc.global_thread_id_x();
                if i < n {
                    let v = tc.read(&a, i);
                    tc.write(&b, i, v.rotate_left(7) ^ 0x9e37);
                }
            })
        };
        let stats = d.launch(&k, LaunchConfig::new(4u32, 32u32)).unwrap();
        (b.to_vec(), stats.threads_executed, stats.global_bytes())
    };
    assert_eq!(run(false), run(true), "a quiet plan must not perturb results or counters");
}
