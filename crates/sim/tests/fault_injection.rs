//! End-to-end fault injection through the public device API: retry
//! recovery, sticky-error semantics, corruption repair, device loss, and
//! the fault-free zero-overhead baseline.

use ompx_sim::device::{Device, DeviceProfile};
use ompx_sim::dim::LaunchConfig;
use ompx_sim::exec::Kernel;
use ompx_sim::prelude::*;

fn device() -> Device {
    Device::new(DeviceProfile::test_small())
}

fn fill_kernel(out: &ompx_sim::mem::DBuf<u32>, n: usize) -> Kernel {
    let out = out.clone();
    Kernel::new("fill", move |tc| {
        let i = tc.global_thread_id_x();
        if i < n {
            tc.write(&out, i, (i * 2) as u32);
        }
    })
}

#[test]
fn injected_launch_fault_recovers_via_retry_with_span_evidence() {
    let d = device();
    let plan = FaultPlan::none().with_injection(FaultSite::Launch, 0, FaultKind::LaunchFail);
    let faults = FaultState::new(plan);
    d.attach_faults(std::sync::Arc::clone(&faults));

    let n = 64usize;
    let out = d.alloc::<u32>(n);
    let kernel = fill_kernel(&out, n);
    let log = SpanLog::new();
    let prev = SpanLog::install(std::sync::Arc::clone(&log));

    let policy = d.retry_policy();
    let stats =
        run_with_retry(&d, &policy, "fill", || d.launch(&kernel, LaunchConfig::new(2u32, 32u32)))
            .expect("the default retry budget must outlast a single-shot injection");
    match prev {
        Some(p) => drop(SpanLog::install(p)),
        None => drop(SpanLog::uninstall()),
    }
    assert_eq!(stats.threads_executed, 64);
    assert_eq!(out.to_vec()[10], 20);

    let snap = faults.snapshot();
    assert_eq!(snap.recovered, 1);
    assert_eq!(snap.injected.len(), 1);
    assert!(matches!(snap.injected[0].kind, FaultKind::LaunchFail));

    // The retry and the recovery are visible on the span timeline.
    let spans = log.spans();
    let retries: Vec<_> = spans.iter().filter(|s| s.cat == SpanCategory::Retry).collect();
    assert!(
        retries.iter().any(|s| s.name.contains("retry fill #1")),
        "expected a retry span, got {:?}",
        retries.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    assert!(retries.iter().any(|s| s.name.contains("recovered fill")));
    // No error left behind: the operation ultimately succeeded.
    assert!(d.peek_last_error().is_none());
}

#[test]
fn memcpy_corruption_is_repaired_by_the_retry() {
    let d = device();
    let plan = FaultPlan::none().with_injection(FaultSite::MemcpyH2D, 0, FaultKind::MemcpyCorrupt);
    d.attach_faults(FaultState::new(plan));

    let src: Vec<u32> = (0..256).collect();
    let dst = d.alloc::<u32>(256);
    // First attempt copies-then-corrupts one element; the recopy repairs it.
    let policy = d.retry_policy();
    run_with_retry(&d, &policy, "h2d", || d.try_memcpy_h2d(&dst, &src)).unwrap();
    assert_eq!(dst.to_vec(), src);
}

#[test]
fn single_failed_attempt_observes_the_corruption() {
    let d = device();
    let plan = FaultPlan::none().with_injection(FaultSite::MemcpyH2D, 0, FaultKind::MemcpyCorrupt);
    d.attach_faults(FaultState::new(plan));

    let src: Vec<u32> = (0..16).collect();
    let dst = d.alloc::<u32>(16);
    let err = d.try_memcpy_h2d(&dst, &src).unwrap_err();
    assert!(matches!(err, SimError::MemcpyFault { corrupted: true, .. }), "got {err}");
    // Exactly one element differs by exactly one bit.
    let diff: Vec<usize> = dst
        .to_vec()
        .iter()
        .zip(&src)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(diff.len(), 1, "one deterministic element must be bit-flipped");
    let i = diff[0];
    assert_eq!(dst.get(i) ^ src[i], 1);
}

#[test]
fn device_loss_is_sticky_and_survives_get() {
    let d = device();
    let buf = d.alloc::<u32>(4);
    d.attach_faults(FaultState::new(FaultPlan::none().with_device_loss_at(0)));

    let err = d.try_alloc::<f32>(8).unwrap_err();
    assert!(matches!(err, SimError::DeviceLost { .. }));
    assert!(d.is_lost());

    // Everything after the loss fails the same way.
    assert!(matches!(d.try_memcpy_h2d(&buf, &[1, 2]).unwrap_err(), SimError::DeviceLost { .. }));

    // Sticky semantics: record once, peek and take both keep returning it.
    d.record_error(SimError::DeviceLost { device: d.id() });
    // A later transient error must not displace the sticky one.
    d.record_error(SimError::EccTransient { op: "x".into() });
    assert!(matches!(d.peek_last_error(), Some(SimError::DeviceLost { .. })));
    assert!(matches!(d.take_last_error(), Some(SimError::DeviceLost { .. })));
    assert!(
        matches!(d.take_last_error(), Some(SimError::DeviceLost { .. })),
        "sticky survives take"
    );

    // reset() clears even sticky errors (cudaDeviceReset semantics).
    d.reset();
    assert!(d.peek_last_error().is_none());
}

#[test]
fn transient_error_is_cleared_by_take_but_not_peek() {
    let d = device();
    d.record_error(SimError::EccTransient { op: "launch of k".into() });
    assert!(d.peek_last_error().is_some());
    assert!(d.peek_last_error().is_some(), "peek never clears");
    assert!(d.take_last_error().is_some());
    assert!(d.take_last_error().is_none(), "take clears non-sticky errors");
}

// ---- watchdog partial side effects -----------------------------------------
//
// An injected watchdog timeout no longer fails cleanly before execution: it
// commits a deterministic block prefix (`salt % num_blocks` blocks, where
// the salt for an explicit injection is `splitmix64(seed ^ site.code() ^
// op)`). With seed 0 at Launch op 0 the salt mod 16 is 10, so a 16-block
// launch commits exactly its first ten blocks; with seed 3 it commits
// seven.

/// Kernel that stamps `out[i] = i + 1` across one element per thread.
fn stamp_kernel(out: &ompx_sim::mem::DBuf<u32>, n: usize) -> Kernel {
    let out = out.clone();
    Kernel::new("stamp", move |tc| {
        let i = tc.global_thread_id_x();
        if i < n {
            tc.write(&out, i, (i + 1) as u32);
        }
    })
}

fn watchdog_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::none().with_injection(FaultSite::Launch, 0, FaultKind::Watchdog);
    plan.seed = seed;
    plan
}

#[test]
fn watchdog_commits_a_deterministic_block_prefix() {
    let run = |seed: u64| {
        let d = device();
        d.attach_faults(FaultState::new(watchdog_plan(seed)));
        let n = 64usize;
        let out = d.alloc::<u32>(n);
        let err = d.launch(&stamp_kernel(&out, n), LaunchConfig::new(16u32, 4u32)).unwrap_err();
        assert!(matches!(err, SimError::WatchdogTimeout { .. }), "got {err}");
        assert!(err.is_injected() && !err.is_transient(), "watchdog must not be retried");
        out.to_vec()
    };

    // Seed 0 commits ten blocks of four threads: elements 0..40 are
    // stamped, everything past the cutoff never ran.
    let first = run(0);
    assert_eq!(first[..40], (1..=40).collect::<Vec<u32>>()[..], "first ten blocks commit");
    assert!(first[40..].iter().all(|&v| v == 0), "blocks past the cutoff leave no writes");

    // The committed prefix is a pure function of (seed, site, op): same
    // seed, same bits; a different seed cuts at a different block.
    assert_eq!(first, run(0));
    let other = run(3);
    assert_eq!(other[..28], (1..=28).collect::<Vec<u32>>()[..], "seed 3 commits seven blocks");
    assert!(other[28..].iter().all(|&v| v == 0));
}

#[test]
fn watchdog_checkpoint_restore_makes_the_fallback_bit_identical() {
    let n = 64usize;
    let sentinel: Vec<u32> = (0..n as u32).map(|i| 0xDEAD_0000 | i).collect();

    // The fault-free reference result.
    let expected: Vec<u32> = {
        let d = device();
        let out = d.alloc_from(&sentinel);
        d.launch(&stamp_kernel(&out, n), LaunchConfig::new(16u32, 4u32)).unwrap();
        out.to_vec()
    };

    let d = device();
    d.attach_faults(FaultState::new(watchdog_plan(0)));
    let out = d.alloc_from(&sentinel);
    let kernel = stamp_kernel(&out, n);
    let cfg = LaunchConfig::new(16u32, 4u32);
    let err = d.launch(&kernel, cfg.clone()).unwrap_err();
    assert!(matches!(err, SimError::WatchdogTimeout { .. }), "got {err}");
    assert_ne!(out.to_vec(), sentinel, "the committed prefix must be visible");
    assert_ne!(out.to_vec(), expected, "the partial result must not pass for a full one");

    // The device checkpointed the kernel's write-set when the watchdog
    // fired; restoring rewinds exactly the committed prefix...
    assert!(d.restore_checkpoint("stamp"), "a watchdog launch must leave a checkpoint");
    assert_eq!(out.to_vec(), sentinel, "restore rewinds to the pre-launch bits");
    assert!(!d.restore_checkpoint("stamp"), "the checkpoint is consumed by the restore");

    // ...so the injection-blind re-dispatch reproduces the fault-free
    // result bit for bit.
    d.launch_unchecked(&kernel, cfg).unwrap();
    assert_eq!(out.to_vec(), expected, "fallback after restore is bit-identical");
}

#[test]
fn memtrace_observes_exactly_the_committed_prefix() {
    let d = device();
    d.attach_faults(FaultState::new(watchdog_plan(0)));
    let trace = ompx_sim::memtrace::MemTrace::new();
    d.attach_mem_trace(std::sync::Arc::clone(&trace));

    let n = 64usize;
    let out = d.alloc::<u32>(n);
    d.launch(&stamp_kernel(&out, n), LaunchConfig::new(16u32, 4u32)).unwrap_err();

    // Ten blocks of four threads each issue one write: forty events, all
    // from blocks below the cutoff, covering exactly elements 0..40.
    let events = trace.events();
    assert_eq!(events.len(), 40, "one traced write per committed thread");
    assert!(events.iter().all(|e| e.kernel == "stamp" && e.block.0 < 10));
    assert!(events.iter().all(|e| e.kind == ompx_sim::memtrace::MemAccessKind::Write));
    let mut indices: Vec<usize> = events.iter().map(|e| e.index).collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..40).collect::<Vec<usize>>());
}

#[test]
fn sanitizer_observes_exactly_the_committed_prefix() {
    use ompx_sim::san::{DiagKind, SanState, ToolMask};

    let d = device();
    d.attach_faults(FaultState::new(watchdog_plan(0)));
    let san = SanState::new(ToolMask::MEMCHECK);
    d.attach_sanitizer(std::sync::Arc::clone(&san));

    // Thread 0 of every block also writes one out-of-bounds element at a
    // block-distinct index, so each *executed* block leaves exactly one
    // memcheck finding.
    let n = 64usize;
    let out = d.alloc_labeled::<u32>(n, "out");
    let kernel = {
        let out = out.clone();
        Kernel::new("probe", move |tc| {
            let i = tc.global_thread_id_x();
            if i < n {
                tc.write(&out, i, (i + 1) as u32);
            }
            if tc.thread_id_x() == 0 {
                tc.write(&out, n + tc.block_id_x(), 0);
            }
        })
    };
    d.launch(&kernel, LaunchConfig::new(16u32, 4u32)).unwrap_err();

    let diags = san.diagnostics();
    assert_eq!(diags.len(), 10, "one finding per committed block, none past the cutoff");
    assert!(diags.iter().all(|g| g.kind == DiagKind::OutOfBounds && g.block.0 < 10));
}

#[test]
fn write_set_hint_scopes_the_checkpoint_to_written_buffers() {
    let run = |with_hint: bool| {
        let d = device();
        d.attach_faults(FaultState::new(watchdog_plan(0)));
        let n = 64usize;
        let out = d.alloc_labeled::<u32>(n, "out");
        let aux = d.alloc_labeled::<u32>(4, "aux");
        d.try_memcpy_h2d(&aux, &[7, 7, 7, 7]).unwrap();
        if with_hint {
            d.set_kernel_write_set("stamp", &["out"]);
        }
        d.launch(&stamp_kernel(&out, n), LaunchConfig::new(16u32, 4u32)).unwrap_err();
        // Host-side progress on an unrelated buffer between the failure
        // and the recovery.
        d.try_memcpy_h2d(&aux, &[99]).unwrap();
        assert!(d.restore_checkpoint("stamp"));
        (out.to_vec(), aux.get(0))
    };

    // With the analyzer-derived hint the checkpoint covers only the
    // kernel's written buffers: `out` rewinds, `aux` keeps the host write.
    let (out, aux0) = run(true);
    assert!(out.iter().all(|&v| v == 0), "hinted restore rewinds the written buffer");
    assert_eq!(aux0, 99, "hinted restore leaves unrelated buffers alone");

    // Without a hint the device snapshots every live allocation, so the
    // host write is (conservatively) rewound too.
    let (out, aux0) = run(false);
    assert!(out.iter().all(|&v| v == 0));
    assert_eq!(aux0, 7, "whole-buffer fallback rewinds everything");
}

#[test]
fn fault_free_plan_is_bit_identical_to_no_faults_at_all() {
    let run = |attach_quiet: bool| {
        let d = device();
        if attach_quiet {
            d.attach_faults(FaultState::new(FaultPlan::none()));
        }
        let n = 128usize;
        let src: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let a = d.alloc_from(&src);
        let b = d.alloc::<u32>(n);
        let k = {
            let (a, b) = (a.clone(), b.clone());
            Kernel::new("xform", move |tc| {
                let i = tc.global_thread_id_x();
                if i < n {
                    let v = tc.read(&a, i);
                    tc.write(&b, i, v.rotate_left(7) ^ 0x9e37);
                }
            })
        };
        let stats = d.launch(&k, LaunchConfig::new(4u32, 32u32)).unwrap();
        (b.to_vec(), stats.threads_executed, stats.global_bytes())
    };
    assert_eq!(run(false), run(true), "a quiet plan must not perturb results or counters");
}
