//! Golden tests for the timing model: lock the calibration.
//!
//! Every Figure 8 ordering in EXPERIMENTS.md depends on the model's
//! constants (efficiency references, latency parameters, mode overheads).
//! These tests pin the modeled seconds for five canonical kernel shapes;
//! an intentional recalibration must update the constants here *and*
//! re-validate the shape table in DESIGN.md §3.

#![allow(clippy::excessive_precision)] // golden values are exact

use ompx_sim::counters::StatsSnapshot;
use ompx_sim::device::DeviceProfile;
use ompx_sim::timing::{model_kernel, CodegenInfo, ModeOverheads};

struct Case {
    name: &'static str,
    expected_seconds: f64,
}

fn run_case(name: &str) -> f64 {
    let a100 = DeviceProfile::a100();
    let mi250 = DeviceProfile::mi250();
    match name {
        // A bandwidth-bound streaming kernel (the SU3/Stencil shape).
        "streaming_a100" => {
            model_kernel(
                &a100,
                256,
                4096,
                0,
                &StatsSnapshot {
                    global_load_bytes: 1 << 30,
                    global_store_bytes: 1 << 30,
                    flops: 1 << 28,
                    ..Default::default()
                },
                &CodegenInfo { coalescing: 0.95, ..Default::default() },
                &ModeOverheads::none(),
            )
            .seconds
        }
        // A latency-bound random-access kernel (the XSBench shape).
        "latency_a100" => {
            model_kernel(
                &a100,
                256,
                4096,
                0,
                &StatsSnapshot { global_load_bytes: 1 << 28, ..Default::default() },
                &CodegenInfo {
                    coalescing: 0.2,
                    regs_per_thread: 52,
                    fp64_fraction: 1.0,
                    ..Default::default()
                },
                &ModeOverheads::none(),
            )
            .seconds
        }
        // A compute-bound fp64 kernel (the RSBench shape) on the MI250.
        "compute_mi250" => {
            model_kernel(
                &mi250,
                128,
                8192,
                0,
                &StatsSnapshot { flops: 1 << 36, ..Default::default() },
                &CodegenInfo { fp64_fraction: 1.0, ..Default::default() },
                &ModeOverheads::none(),
            )
            .seconds
        }
        // Generic-mode overhead with half a million teams (the Stencil-omp
        // §4.2.6 shape).
        "generic_mode_a100" => {
            model_kernel(
                &a100,
                128,
                524288,
                0,
                &StatsSnapshot {
                    global_load_bytes: 1 << 30,
                    barriers: 1 << 24,
                    serial_ops: 1 << 20,
                    ..Default::default()
                },
                &CodegenInfo::default(),
                &ModeOverheads {
                    extra_launch_s: 2.5e-6,
                    body_multiplier: 1.0,
                    per_block_cycles: 170.0,
                },
            )
            .seconds
        }
        // A shared-memory-heavy tiled kernel with demotion (the AIDW shape).
        "shared_heavy_a100" => {
            model_kernel(
                &a100,
                64,
                6400,
                64 * 12,
                &StatsSnapshot { shared_accesses: 1 << 32, flops: 1 << 30, ..Default::default() },
                &CodegenInfo { shared_demotion: 0.55, ..Default::default() },
                &ModeOverheads::none(),
            )
            .seconds
        }
        other => panic!("unknown golden case {other}"),
    }
}

#[test]
fn timing_model_calibration_is_locked() {
    let cases = [
        Case { name: "streaming_a100", expected_seconds: 1.45570360331697410e-3 },
        Case { name: "latency_a100", expected_seconds: 1.72827302893890683e-3 },
        Case { name: "compute_mi250", expected_seconds: 3.04368481132743368e-3 },
        Case { name: "generic_mode_a100", expected_seconds: 6.40706375634568503e-2 },
        Case { name: "shared_heavy_a100", expected_seconds: 4.25066124507486175e-4 },
    ];
    for c in cases {
        let got = run_case(c.name);
        let rel = (got - c.expected_seconds).abs() / c.expected_seconds;
        assert!(
            rel < 1e-12,
            "{}: modeled {got:.17e} deviates from golden {:.17e} (rel {rel:.3e}).\n\
             If this recalibration is intentional, update the golden value AND\n\
             re-run `figures fig8` to confirm the DESIGN.md shape table still holds.",
            c.name,
            c.expected_seconds
        );
    }
}

#[test]
fn modeled_times_are_bit_reproducible() {
    for name in [
        "streaming_a100",
        "latency_a100",
        "compute_mi250",
        "generic_mode_a100",
        "shared_heavy_a100",
    ] {
        let a = run_case(name);
        let b = run_case(name);
        assert_eq!(a.to_bits(), b.to_bits(), "{name} not deterministic");
    }
}
