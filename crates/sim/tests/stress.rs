//! Executor stress tests: oversubscription, barrier storms, concurrent
//! launches, and tracing under load.

use ompx_sim::prelude::*;
use std::sync::Arc;

fn dev() -> Device {
    Device::new(DeviceProfile::test_small())
}

#[test]
fn barrier_storm_on_the_team_path() {
    // Many blocks, maximum block width for the test device, dozens of
    // barrier phases with data handoffs between neighbours each round.
    let d = dev();
    let tpb = d.profile().max_threads_per_block as usize; // 128
    let blocks = 6usize;
    let mut cfg = LaunchConfig::new(blocks as u32, tpb as u32);
    let slot = cfg.shared_array::<u64>(tpb);
    let out = d.alloc::<u64>(blocks * tpb);
    const ROUNDS: usize = 24;
    let k =
        Kernel::with_flags("storm", KernelFlags { uses_block_sync: true, uses_warp_ops: false }, {
            let out = out.clone();
            move |tc: &mut ThreadCtx<'_>| {
                let t = tc.thread_rank();
                let tile = tc.shared::<u64>(slot);
                tc.swrite(&tile, t, t as u64);
                tc.sync_threads();
                for _ in 0..ROUNDS {
                    // Rotate the tile by one each round.
                    let v = tc.sread(&tile, (t + 1) % tpb);
                    tc.sync_threads();
                    tc.swrite(&tile, t, v);
                    tc.sync_threads();
                }
                let v = tc.sread(&tile, t);
                tc.write(&out, tc.global_rank(), v);
            }
        });
    let stats = d.launch(&k, cfg).unwrap();
    // After ROUNDS rotations, slot t holds (t + ROUNDS) % tpb.
    let got = out.to_vec();
    for b in 0..blocks {
        for t in 0..tpb {
            assert_eq!(got[b * tpb + t], ((t + ROUNDS) % tpb) as u64, "block {b} lane {t}");
        }
    }
    assert_eq!(stats.barriers, (blocks * tpb * (1 + 2 * ROUNDS)) as u64);
}

#[test]
fn concurrent_launches_from_many_host_threads() {
    // The device must support simultaneous launches from independent host
    // threads (each HeCBench version builds its own context, and streams
    // launch from worker threads).
    let d = dev();
    let results: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let d = d.clone();
                s.spawn(move || {
                    let buf = d.alloc::<u64>(256);
                    let k = Kernel::new(format!("conc{t}"), {
                        let buf = buf.clone();
                        move |tc: &mut ThreadCtx<'_>| {
                            let i = tc.global_rank();
                            if i < 256 {
                                tc.write(&buf, i, (i as u64) * (t + 1));
                            }
                        }
                    });
                    for _ in 0..5 {
                        d.launch(&k, LaunchConfig::linear(256, 32)).unwrap();
                    }
                    buf.to_vec().iter().sum::<u64>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let base: u64 = (0..256u64).sum();
    for (t, sum) in results.iter().enumerate() {
        assert_eq!(*sum, base * (t as u64 + 1));
    }
}

#[test]
fn mixed_warp_and_block_sync_kernel() {
    // Kernels combining both synchronization granularities (the §2.7 gap
    // the extensions close) on the team path.
    let d = dev();
    let tpb = 16usize;
    let ws = d.profile().warp_size as usize; // 4
    let mut cfg = LaunchConfig::new(3u32, tpb as u32);
    let slot = cfg.shared_array::<f64>(tpb);
    let out = d.alloc::<f64>(3);
    let k =
        Kernel::with_flags("mixed", KernelFlags { uses_block_sync: true, uses_warp_ops: true }, {
            let out = out.clone();
            move |tc: &mut ThreadCtx<'_>| {
                // Warp-level reduce, then block-level combine of warp sums.
                let mut acc = (tc.thread_rank() + 1) as f64;
                let mut off = ws / 2;
                while off > 0 {
                    acc += tc.shfl_xor(acc, off);
                    off /= 2;
                }
                let tile = tc.shared::<f64>(slot);
                if tc.lane_id() == 0 {
                    tc.swrite(&tile, tc.warp_id(), acc);
                }
                tc.sync_threads();
                if tc.thread_rank() == 0 {
                    let mut total = 0.0;
                    for w in 0..tpb / ws {
                        total += tc.sread(&tile, w);
                    }
                    tc.write(&out, tc.block_rank(), total);
                }
            }
        });
    d.launch(&k, cfg).unwrap();
    let expect = (1..=tpb).sum::<usize>() as f64;
    assert_eq!(out.to_vec(), vec![expect; 3]);
}

#[test]
fn tracing_under_concurrent_launches() {
    let d = dev();
    d.enable_tracing();
    let buf = Arc::new(d.alloc::<u32>(64));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let d = d.clone();
            let buf = Arc::clone(&buf);
            s.spawn(move || {
                let k = Kernel::new("traced", {
                    let buf = (*buf).clone();
                    move |tc: &mut ThreadCtx<'_>| {
                        tc.atomic_add(&buf, tc.global_rank() % 64, 1);
                    }
                });
                for _ in 0..10 {
                    d.launch(&k, LaunchConfig::linear(64, 16)).unwrap();
                }
            });
        }
    });
    assert_eq!(d.trace().len(), 40);
    let json = d.trace().to_chrome_trace();
    assert_eq!(json.matches("\"name\":\"traced\"").count(), 40);
    d.disable_tracing();
    let k = Kernel::new("untraced", |_tc: &mut ThreadCtx<'_>| {});
    d.launch(&k, LaunchConfig::linear(16, 16)).unwrap();
    assert_eq!(d.trace().len(), 40, "disabled tracing must not record");
}

#[test]
fn deep_iteration_pingpong_is_deterministic() {
    // 100 dependent launches ping-ponging buffers: any executor
    // misordering would corrupt the final value.
    let d = dev();
    let a = d.alloc_from(&vec![1.0f64; 128]);
    let b = d.alloc::<f64>(128);
    for it in 0..100 {
        let (src, dst) = if it % 2 == 0 { (&a, &b) } else { (&b, &a) };
        let k = Kernel::new("pingpong", {
            let (src, dst) = (src.clone(), dst.clone());
            move |tc: &mut ThreadCtx<'_>| {
                let i = tc.global_rank();
                if i < 128 {
                    let v = tc.read(&src, i);
                    tc.write(&dst, i, v * 1.01);
                }
            }
        });
        d.launch(&k, LaunchConfig::linear(128, 32)).unwrap();
    }
    let expect = 1.01f64.powi(100);
    let got = a.get(0); // 100 launches end back in `a`
    assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
}
