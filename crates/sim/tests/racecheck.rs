//! Tests for the shared-memory race detector (the
//! `compute-sanitizer --tool racecheck` analogue).
//!
//! The detector targets exactly the bug class the paper's porting story
//! risks: hand-written SIMT tiling where a `__syncthreads()` went missing
//! between staging a tile and reading a neighbour's element.

use ompx_sim::prelude::*;

fn dev() -> Device {
    Device::new(DeviceProfile::test_small())
}

fn tile_kernel(slot: usize, tpb: usize, with_barrier: bool) -> Kernel {
    Kernel::with_flags(
        if with_barrier { "tile_ok" } else { "tile_racy" },
        KernelFlags { uses_block_sync: true, uses_warp_ops: false },
        move |tc: &mut ThreadCtx<'_>| {
            let tile = tc.shared::<u32>(slot);
            let t = tc.thread_rank();
            tc.swrite(&tile, t, t as u32);
            if with_barrier {
                tc.sync_threads();
            }
            // Reading the neighbour's element: safe only after the barrier.
            let _ = tc.sread(&tile, (t + 1) % tpb);
        },
    )
}

#[test]
fn correct_tiling_passes_racecheck() {
    let d = dev();
    let tpb = 16;
    let mut cfg = LaunchConfig::new(4u32, tpb as u32).with_racecheck();
    let slot = cfg.shared_array::<u32>(tpb);
    d.launch(&tile_kernel(slot, tpb, true), cfg).unwrap();
}

#[test]
#[should_panic(expected = "shared-memory data race detected")]
fn missing_barrier_is_caught() {
    let d = dev();
    let tpb = 16;
    let mut cfg = LaunchConfig::new(1u32, tpb as u32).with_racecheck();
    let slot = cfg.shared_array::<u32>(tpb);
    // No barrier between the write and the neighbour read: a classic
    // shared-memory race. The detector must fire.
    d.launch(&tile_kernel(slot, tpb, false), cfg).unwrap();
}

#[test]
#[should_panic(expected = "shared-memory data race detected")]
fn write_write_conflict_is_caught() {
    let d = dev();
    let mut cfg = LaunchConfig::new(1u32, 8u32).with_racecheck();
    let slot = cfg.shared_array::<u32>(1);
    let k = Kernel::with_flags(
        "ww_race",
        KernelFlags { uses_block_sync: true, uses_warp_ops: false },
        move |tc: &mut ThreadCtx<'_>| {
            let tile = tc.shared::<u32>(slot);
            // Every lane writes cell 0 in the same epoch.
            tc.swrite(&tile, 0, tc.thread_rank() as u32);
        },
    );
    d.launch(&k, cfg).unwrap();
}

#[test]
fn same_epoch_reads_are_fine() {
    // Many readers of the same cell without writers: no race.
    let d = dev();
    let tpb = 16;
    let mut cfg = LaunchConfig::new(2u32, tpb as u32).with_racecheck();
    let slot = cfg.shared_array::<f32>(1);
    let k = Kernel::with_flags(
        "broadcast_read",
        KernelFlags { uses_block_sync: true, uses_warp_ops: false },
        move |tc: &mut ThreadCtx<'_>| {
            let tile = tc.shared::<f32>(slot);
            if tc.thread_rank() == 0 {
                tc.swrite(&tile, 0, 42.0);
            }
            tc.sync_threads();
            assert_eq!(tc.sread(&tile, 0), 42.0);
        },
    );
    d.launch(&k, cfg).unwrap();
}

#[test]
fn racecheck_off_by_default_never_fires() {
    // The racy kernel runs without panicking when the detector is off —
    // like hardware, where the race is silent.
    let d = dev();
    let tpb = 16;
    let mut cfg = LaunchConfig::new(1u32, tpb as u32);
    let slot = cfg.shared_array::<u32>(tpb);
    d.launch(&tile_kernel(slot, tpb, false), cfg).unwrap();
}
