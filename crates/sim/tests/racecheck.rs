//! Tests for the shared-memory race detector (the
//! `compute-sanitizer --tool racecheck` analogue).
//!
//! The detector targets exactly the bug class the paper's porting story
//! risks: hand-written SIMT tiling where a `__syncthreads()` went missing
//! between staging a tile and reading a neighbour's element. Racecheck is
//! session-scoped: attach a `SanState` with `ToolMask::RACECHECK` to the
//! device and read the structured diagnostics back afterwards.

use ompx_sim::prelude::*;
use ompx_sim::san::{DiagKind, Diagnostic, SanState, ToolMask};
use std::sync::Arc;

fn dev() -> Device {
    Device::new(DeviceProfile::test_small())
}

/// Run `f` on `d` with a racecheck session attached, returning what the
/// session recorded.
fn with_racecheck_session(d: &Device, f: impl FnOnce()) -> Vec<Diagnostic> {
    let san = SanState::new(ToolMask::RACECHECK);
    d.attach_sanitizer(Arc::clone(&san));
    f();
    d.detach_sanitizer();
    san.drain_diagnostics()
}

fn has_shared_race(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.kind == DiagKind::SharedRace)
}

fn tile_kernel(slot: usize, tpb: usize, with_barrier: bool) -> Kernel {
    Kernel::with_flags(
        if with_barrier { "tile_ok" } else { "tile_racy" },
        KernelFlags { uses_block_sync: true, uses_warp_ops: false },
        move |tc: &mut ThreadCtx<'_>| {
            let tile = tc.shared::<u32>(slot);
            let t = tc.thread_rank();
            tc.swrite(&tile, t, t as u32);
            if with_barrier {
                tc.sync_threads();
            }
            // Reading the neighbour's element: safe only after the barrier.
            let _ = tc.sread(&tile, (t + 1) % tpb);
        },
    )
}

#[test]
fn correct_tiling_passes_racecheck() {
    let d = dev();
    let tpb = 16;
    let mut cfg = LaunchConfig::new(4u32, tpb as u32);
    let slot = cfg.shared_array::<u32>(tpb);
    let diags = with_racecheck_session(&d, || {
        d.launch(&tile_kernel(slot, tpb, true), cfg).unwrap();
    });
    assert!(!has_shared_race(&diags), "{diags:?}");
}

#[test]
fn missing_barrier_is_caught() {
    let d = dev();
    let tpb = 16;
    let mut cfg = LaunchConfig::new(1u32, tpb as u32);
    let slot = cfg.shared_array::<u32>(tpb);
    // No barrier between the write and the neighbour read: a classic
    // shared-memory race. The detector must record it (and the launch
    // still completes — hardware tools observe, they don't abort).
    let diags = with_racecheck_session(&d, || {
        d.launch(&tile_kernel(slot, tpb, false), cfg).unwrap();
    });
    assert!(has_shared_race(&diags), "{diags:?}");
    let d0 = diags.iter().find(|d| d.kind == DiagKind::SharedRace).unwrap();
    assert_eq!(d0.kernel, "tile_racy");
}

#[test]
fn write_write_conflict_is_caught() {
    let d = dev();
    let mut cfg = LaunchConfig::new(1u32, 8u32);
    let slot = cfg.shared_array::<u32>(1);
    let k = Kernel::with_flags(
        "ww_race",
        KernelFlags { uses_block_sync: true, uses_warp_ops: false },
        move |tc: &mut ThreadCtx<'_>| {
            let tile = tc.shared::<u32>(slot);
            // Every lane writes cell 0 in the same epoch.
            tc.swrite(&tile, 0, tc.thread_rank() as u32);
        },
    );
    let diags = with_racecheck_session(&d, || {
        d.launch(&k, cfg).unwrap();
    });
    assert!(has_shared_race(&diags), "{diags:?}");
}

#[test]
fn same_epoch_reads_are_fine() {
    // Many readers of the same cell without writers: no race.
    let d = dev();
    let tpb = 16;
    let mut cfg = LaunchConfig::new(2u32, tpb as u32);
    let slot = cfg.shared_array::<f32>(1);
    let k = Kernel::with_flags(
        "broadcast_read",
        KernelFlags { uses_block_sync: true, uses_warp_ops: false },
        move |tc: &mut ThreadCtx<'_>| {
            let tile = tc.shared::<f32>(slot);
            if tc.thread_rank() == 0 {
                tc.swrite(&tile, 0, 42.0);
            }
            tc.sync_threads();
            assert_eq!(tc.sread(&tile, 0), 42.0);
        },
    );
    let diags = with_racecheck_session(&d, || {
        d.launch(&k, cfg).unwrap();
    });
    assert!(!has_shared_race(&diags), "{diags:?}");
}

#[test]
fn racecheck_off_by_default_never_fires() {
    // The racy kernel runs silently when no session is attached — like
    // hardware, where the race is invisible without a tool.
    let d = dev();
    let tpb = 16;
    let mut cfg = LaunchConfig::new(1u32, tpb as u32);
    let slot = cfg.shared_array::<u32>(tpb);
    d.launch(&tile_kernel(slot, tpb, false), cfg).unwrap();
}
