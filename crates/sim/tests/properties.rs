//! Property-based tests on the simulator's core invariants.

use ompx_sim::prelude::*;
use ompx_sim::timing::{model_kernel, occupancy};
use proptest::prelude::*;

fn small_device() -> Device {
    Device::new(DeviceProfile::test_small())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dim3 linearize/delinearize is a bijection over the extent.
    #[test]
    fn dim3_linear_roundtrip(x in 1u32..8, y in 1u32..8, z in 1u32..8, pick in 0usize..512) {
        let d = Dim3::new(x, y, z);
        let idx = pick % d.count();
        let (cx, cy, cz) = d.delinear(idx);
        prop_assert!(cx < x && cy < y && cz < z);
        prop_assert_eq!(d.linear(cx, cy, cz), idx);
    }

    /// Every simulated thread executes exactly once, for arbitrary
    /// geometry, on whichever executor path the flags select.
    #[test]
    fn exactly_once_execution(
        blocks in 1u32..6,
        threads in 1u32..33,
        use_sync in proptest::bool::ANY,
    ) {
        let dev = small_device();
        let total = (blocks * threads) as usize;
        let hits = dev.alloc::<u32>(total);
        let flags = KernelFlags { uses_block_sync: use_sync, uses_warp_ops: false };
        let k = Kernel::with_flags("cover", flags, {
            let hits = hits.clone();
            move |tc: &mut ThreadCtx<'_>| {
                if use_sync {
                    tc.sync_threads();
                }
                tc.atomic_add(&hits, tc.global_rank(), 1);
            }
        });
        let stats = dev.launch(&k, LaunchConfig::new(blocks, threads)).unwrap();
        prop_assert_eq!(stats.threads_executed as usize, total);
        prop_assert_eq!(stats.blocks_executed as usize, blocks as usize);
        prop_assert!(hits.to_vec().iter().all(|&h| h == 1));
    }

    /// Warp shuffles permute values: a shfl from lane (lane+k)%w delivers
    /// each lane's value to exactly one receiver.
    #[test]
    fn shuffle_rotation_is_a_permutation(threads in 1u32..17, rot in 0usize..8) {
        let dev = small_device();
        let n = threads as usize;
        let got = dev.alloc::<u64>(n);
        let k = Kernel::with_flags(
            "rot",
            KernelFlags { uses_block_sync: false, uses_warp_ops: true },
            {
                let got = got.clone();
                move |tc: &mut ThreadCtx<'_>| {
                    let v = tc.shfl(tc.thread_rank() as u64, tc.lane_id() + rot);
                    tc.write(&got, tc.thread_rank(), v);
                }
            },
        );
        dev.launch(&k, LaunchConfig::new(1u32, threads)).unwrap();
        // Within each warp, the received set equals the sent set.
        let ws = dev.profile().warp_size as usize;
        let out = got.to_vec();
        for w in 0..n.div_ceil(ws) {
            let lo = w * ws;
            let hi = (lo + ws).min(n);
            let mut received: Vec<u64> = out[lo..hi].to_vec();
            received.sort_unstable();
            let expected: Vec<u64> = (lo as u64..hi as u64).collect();
            prop_assert_eq!(received, expected);
        }
    }

    /// The timing model is monotone in work: more bytes or more flops can
    /// never make a kernel faster.
    #[test]
    fn modeled_time_is_monotone_in_work(
        base_bytes in 1u64..1_000_000_000,
        base_flops in 1u64..1_000_000_000,
        extra in 1u64..1_000_000_000,
    ) {
        let dev = DeviceProfile::a100();
        let cg = CodegenInfo::default();
        let mode = ModeOverheads::none();
        let mk = |bytes: u64, flops: u64| {
            let stats = ompx_sim::counters::StatsSnapshot {
                global_load_bytes: bytes,
                flops,
                ..Default::default()
            };
            model_kernel(&dev, 256, 1024, 0, &stats, &cg, &mode).seconds
        };
        let t0 = mk(base_bytes, base_flops);
        prop_assert!(mk(base_bytes + extra, base_flops) >= t0);
        prop_assert!(mk(base_bytes, base_flops + extra) >= t0);
    }

    /// Occupancy never exceeds the hardware bounds and never reaches zero.
    #[test]
    fn occupancy_is_bounded(
        tpb in 1u32..1025,
        regs in 1u32..256,
        smem in 0usize..200_000,
    ) {
        let dev = DeviceProfile::a100();
        let o = occupancy(&dev, tpb, regs, smem);
        prop_assert!(o.blocks_per_sm >= 1);
        prop_assert!(o.occupancy > 0.0);
        prop_assert!(o.occupancy <= 1.0);
    }

    /// Lower coalescing can never speed a kernel up.
    #[test]
    fn worse_coalescing_never_helps(bytes in 1u64..1_000_000_000, c1 in 0.05f64..1.0, c2 in 0.05f64..1.0) {
        let (lo, hi) = if c1 < c2 { (c1, c2) } else { (c2, c1) };
        let dev = DeviceProfile::mi250();
        let stats = ompx_sim::counters::StatsSnapshot {
            global_load_bytes: bytes,
            ..Default::default()
        };
        let mode = ModeOverheads::none();
        let t_hi = model_kernel(&dev, 128, 512, 0, &stats,
            &CodegenInfo { coalescing: hi, ..Default::default() }, &mode).seconds;
        let t_lo = model_kernel(&dev, 128, 512, 0, &stats,
            &CodegenInfo { coalescing: lo, ..Default::default() }, &mode).seconds;
        prop_assert!(t_lo >= t_hi, "coalescing {lo} gave {t_lo} < {t_hi} at {hi}");
    }

    /// Snapshot scaling is (approximately) homogeneous: scaling counters by
    /// an integer factor scales every extensive field exactly.
    #[test]
    fn snapshot_scaling_integer_exact(f in 1u64..1000, flops in 0u64..1_000_000, bytes in 0u64..1_000_000) {
        let s = ompx_sim::counters::StatsSnapshot {
            flops,
            global_load_bytes: bytes,
            barriers: 7,
            ..Default::default()
        };
        let scaled = s.scaled(f as f64);
        prop_assert_eq!(scaled.flops, flops * f);
        prop_assert_eq!(scaled.global_load_bytes, bytes * f);
        prop_assert_eq!(scaled.barriers, 7 * f);
    }

    /// Device memory accounting: alloc/free cycles always return to the
    /// starting level regardless of interleaving.
    #[test]
    fn allocation_accounting_balances(sizes in proptest::collection::vec(1usize..10_000, 1..12)) {
        let dev = small_device();
        let before = dev.allocated_bytes();
        let bufs: Vec<_> = sizes.iter().map(|&n| dev.alloc::<f64>(n)).collect();
        let expect: usize = sizes.iter().map(|n| n * 8).sum();
        prop_assert_eq!(dev.allocated_bytes(), before + expect);
        for b in &bufs {
            dev.free(b);
        }
        prop_assert_eq!(dev.allocated_bytes(), before);
    }
}

/// Barriers with early-exiting lanes terminate for every split point —
/// exhaustive rather than randomized because it is cheap.
#[test]
fn early_exit_barriers_terminate_for_every_split() {
    let dev = small_device();
    for split in 0..16usize {
        let out = dev.alloc::<u32>(16);
        let k = Kernel::with_flags(
            "split",
            KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            {
                let out = out.clone();
                move |tc: &mut ThreadCtx<'_>| {
                    if tc.thread_rank() >= split.max(1) {
                        return; // early exit before any barrier
                    }
                    tc.sync_threads();
                    tc.write(&out, tc.thread_rank(), 1);
                    tc.sync_threads();
                }
            },
        );
        dev.launch(&k, LaunchConfig::new(1u32, 16u32)).unwrap();
        let got = out.to_vec();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, u32::from(i < split.max(1)), "split={split} lane={i}");
        }
    }
}
