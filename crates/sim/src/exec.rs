//! The kernel executor: runs every simulated GPU thread, really.
//!
//! Two execution paths share identical semantics as far as a kernel can
//! observe:
//!
//! * **Serial path** — for kernels with no intra-block synchronization
//!   (`KernelFlags` default). Blocks are distributed over host worker
//!   threads; within a block, lanes run one after another. This is the fast
//!   path: most of the HeCBench kernels (XSBench, RSBench, Adam, SU3) are
//!   barrier-free.
//! * **Team path** — for kernels that use `sync_threads`, warp shuffles, or
//!   warp barriers. A small number of *teams* is spawned, each consisting of
//!   one OS thread per lane of a block; teams claim blocks from a shared
//!   counter and execute them with true intra-block concurrency. Barriers
//!   park rather than spin because lanes heavily oversubscribe host cores
//!   (see [`crate::barrier`]).
//!
//! The choice mirrors what the MCUDA line of work (cited in the paper's
//! related work) calls "deep fission" vs true threading; we keep kernels
//! unmodified and pay for threads only when the kernel needs them.

use crate::barrier::{RetireBarrier, SenseBarrier};
use crate::counters::{CostCounters, KernelStats, StatsSnapshot};
use crate::dim::LaunchConfig;
use crate::memtrace::LaunchMemTrace;
use crate::san::{AccessSite, LaunchSan, ToolMask};
use crate::shared::BlockShared;
use crate::thread::ThreadCtx;
use crate::warp::WarpGroup;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Static properties of a kernel that the executor must know up front.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelFlags {
    /// Kernel calls `sync_threads` (block-wide barrier).
    pub uses_block_sync: bool,
    /// Kernel calls `sync_warp`, shuffles, or ballots.
    pub uses_warp_ops: bool,
}

impl KernelFlags {
    /// Does this kernel require the barrier-capable team path?
    pub fn needs_team_execution(&self) -> bool {
        self.uses_block_sync || self.uses_warp_ops
    }
}

/// A device kernel: a name (for diagnostics and codegen-profile lookup),
/// executor-relevant flags, and the per-thread body.
#[derive(Clone)]
pub struct Kernel {
    name: String,
    flags: KernelFlags,
    body: Arc<dyn Fn(&mut ThreadCtx) + Send + Sync>,
}

impl Kernel {
    /// A barrier-free kernel (eligible for the serial fast path).
    pub fn new(
        name: impl Into<String>,
        body: impl Fn(&mut ThreadCtx) + Send + Sync + 'static,
    ) -> Self {
        Kernel { name: name.into(), flags: KernelFlags::default(), body: Arc::new(body) }
    }

    /// A kernel with explicit executor flags.
    pub fn with_flags(
        name: impl Into<String>,
        flags: KernelFlags,
        body: impl Fn(&mut ThreadCtx) + Send + Sync + 'static,
    ) -> Self {
        Kernel { name: name.into(), flags, body: Arc::new(body) }
    }

    /// Mark the kernel as using block-wide barriers.
    pub fn with_block_sync(mut self) -> Self {
        self.flags.uses_block_sync = true;
        self
    }

    /// Mark the kernel as using warp-level collectives.
    pub fn with_warp_ops(mut self) -> Self {
        self.flags.uses_warp_ops = true;
        self
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Executor flags.
    pub fn flags(&self) -> KernelFlags {
        self.flags
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kernel({}, {:?})", self.name, self.flags)
    }
}

/// Execute `kernel` over the whole grid and return aggregated statistics.
/// `san` is the launch's sanitizer context when a session is attached to
/// the device.
pub fn run(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
) -> StatsSnapshot {
    run_bounded(kernel, cfg, warp_size, san, mem, cfg.num_blocks())
}

/// Execute only the first `limit` blocks (in grid-linearization order) —
/// the committed prefix of a watchdog-killed launch. Semantics within the
/// prefix are identical to [`run`]: sanitizer and memtrace hooks observe
/// exactly the blocks that committed.
pub(crate) fn run_prefix(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
    limit: usize,
) -> StatsSnapshot {
    run_bounded(kernel, cfg, warp_size, san, mem, limit.min(cfg.num_blocks()))
}

fn run_bounded(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
    num_blocks: usize,
) -> StatsSnapshot {
    let stats = KernelStats::new();
    if kernel.flags.needs_team_execution() && cfg.threads_per_block() > 1 {
        run_team(kernel, cfg, warp_size, &stats, san, mem, num_blocks);
    } else {
        run_serial(kernel, cfg, warp_size, &stats, san, mem, num_blocks);
    }
    stats.snapshot()
}

/// Shared-memory tooling configuration for a launch: an attached sanitizer
/// session with racecheck turns the shadow cells on, one with initcheck
/// turns the init bitmap on.
fn block_shared(cfg: &LaunchConfig, san: Option<&LaunchSan>) -> BlockShared {
    let session_race = san.is_some_and(|s| s.state().tool_on(ToolMask::RACECHECK));
    let session_init = san.is_some_and(|s| s.state().tool_on(ToolMask::INITCHECK));
    BlockShared::with_tools(&cfg.shared_slots, session_race, session_init)
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Serial path: blocks spread over workers, lanes of a block run in sequence.
#[allow(clippy::too_many_arguments)]
fn run_serial(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    stats: &KernelStats,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
    num_blocks: usize,
) {
    let workers = host_parallelism().min(num_blocks).max(1);
    let next_block = AtomicUsize::new(0);

    let panic_payload = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let tpb = cfg.threads_per_block();
                    loop {
                        let b = next_block.fetch_add(1, Ordering::Relaxed);
                        if b >= num_blocks {
                            break;
                        }
                        let shared = block_shared(cfg, san);
                        let (bx, by, bz) = cfg.grid.delinear(b);
                        let mut block_counters = CostCounters::default();
                        for t in 0..tpb {
                            let (tx, ty, tz) = cfg.block.delinear(t);
                            let mut ctx = ThreadCtx {
                                block: (bx, by, bz),
                                thread: (tx, ty, tz),
                                grid_dim: cfg.grid,
                                block_dim: cfg.block,
                                warp_size,
                                counters: CostCounters::default(),
                                shared: &shared,
                                block_barrier: None,
                                warp: None,
                                collective_count: 0,
                                san,
                                mem,
                            };
                            (kernel.body)(&mut ctx);
                            block_counters.merge(&ctx.counters);
                        }
                        stats.absorb_block(&block_counters, tpb as u64);
                        stats.block_done();
                    }
                })
            })
            .collect();
        // Join every worker so a simulated-program panic surfaces with its
        // original message instead of "a scoped thread panicked".
        let mut payload = None;
        for h in handles {
            if let Err(p) = h.join() {
                payload.get_or_insert(p);
            }
        }
        payload
    });
    if let Some(p) = panic_payload {
        std::panic::resume_unwind(p);
    }
}

/// Shared state of one executing block on the team path.
struct BlockExec {
    shared: BlockShared,
    warps: Vec<WarpGroup>,
    barrier: RetireBarrier,
    /// Final `sync_threads` count of each lane, written as the lane retires
    /// and scanned once the block completes: lanes that participated in
    /// barriers but stopped short of the block's maximum diverged
    /// (synccheck).
    barrier_counts: Vec<std::sync::atomic::AtomicU64>,
}

/// Per-team coordination state.
struct TeamState {
    /// Block index currently being executed (usize::MAX = none yet).
    current_block: AtomicUsize,
    /// Rendezvous for the team's lanes between protocol steps.
    gate: SenseBarrier,
    /// The state of the block being executed.
    exec: Mutex<Option<Arc<BlockExec>>>,
    /// Set when a lane panicked: the whole team stops after the current
    /// block (a sticky error, like a device-side assert).
    poisoned: std::sync::atomic::AtomicBool,
}

/// Team path: real intra-block concurrency with barrier support.
#[allow(clippy::too_many_arguments)]
fn run_team(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    stats: &KernelStats,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
    num_blocks: usize,
) {
    let tpb = cfg.threads_per_block();
    let cores = host_parallelism();
    // Enough teams to keep the host busy, but no more than there are blocks
    // and never an absurd number of OS threads.
    let teams = ((cores * 2) / tpb).clamp(1, 8).min(num_blocks).max(1);
    let next_block = Arc::new(AtomicUsize::new(0));

    let panic_payload = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(teams * tpb);
        for _ in 0..teams {
            let team = Arc::new(TeamState {
                current_block: AtomicUsize::new(usize::MAX),
                gate: SenseBarrier::new(tpb),
                exec: Mutex::new(None),
                poisoned: std::sync::atomic::AtomicBool::new(false),
            });
            for lane in 0..tpb {
                let team = Arc::clone(&team);
                let next_block = Arc::clone(&next_block);
                let stats = &*stats;
                handles.push(s.spawn(move || {
                    lane_loop(
                        kernel,
                        cfg,
                        warp_size,
                        lane,
                        &team,
                        &next_block,
                        stats,
                        san,
                        mem,
                        num_blocks,
                    )
                }));
            }
        }
        let mut payload = None;
        for h in handles {
            if let Err(p) = h.join() {
                payload.get_or_insert(p);
            }
        }
        payload
    });
    if let Some(p) = panic_payload {
        std::panic::resume_unwind(p);
    }
}

fn build_warps(tpb: usize, warp_size: u32) -> Vec<WarpGroup> {
    let ws = warp_size as usize;
    let num_warps = tpb.div_ceil(ws);
    (0..num_warps)
        .map(|w| {
            let lanes = ws.min(tpb - w * ws) as u32;
            WarpGroup::new(lanes)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn lane_loop(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    lane: usize,
    team: &TeamState,
    next_block: &AtomicUsize,
    stats: &KernelStats,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
    num_blocks: usize,
) {
    let tpb = cfg.threads_per_block();
    loop {
        // Step 1: lane 0 claims the next block; everyone learns it.
        if lane == 0 {
            let b = next_block.fetch_add(1, Ordering::Relaxed);
            team.current_block.store(b, Ordering::Release);
            if b < num_blocks {
                *team.exec.lock() = Some(Arc::new(BlockExec {
                    shared: block_shared(cfg, san),
                    warps: build_warps(tpb, warp_size),
                    barrier: RetireBarrier::new(tpb),
                    barrier_counts: (0..tpb)
                        .map(|_| std::sync::atomic::AtomicU64::new(0))
                        .collect(),
                }));
            }
        }
        team.gate.wait();
        let b = team.current_block.load(Ordering::Acquire);
        if b >= num_blocks {
            break; // all lanes observe the same sentinel and exit together
        }
        // Executor invariant, not host-side misuse: the scheduler stores
        // every team's exec before any lane reaches this point, so a miss
        // here is a simulator bug and deliberately panics (see error.rs).
        let exec = team.exec.lock().as_ref().expect("block exec must be set").clone();

        // Step 2: run this lane. The body may panic (simulated-program bug,
        // e.g. an out-of-bounds access or a detected data race); sibling
        // lanes could then wait forever on this lane's barriers, so the
        // panic is caught, the lane retires from its barriers, the block
        // protocol completes, and the panic is resumed afterwards so the
        // launch still fails loudly.
        let (bx, by, bz) = cfg.grid.delinear(b);
        let (tx, ty, tz) = cfg.block.delinear(lane);
        let warp = &exec.warps[lane / warp_size as usize];
        let mut ctx = ThreadCtx {
            block: (bx, by, bz),
            thread: (tx, ty, tz),
            grid_dim: cfg.grid,
            block_dim: cfg.block,
            warp_size,
            counters: CostCounters::default(),
            shared: &exec.shared,
            block_barrier: Some(&exec.barrier),
            warp: Some(warp),
            collective_count: 0,
            san,
            mem,
        };
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (kernel.body)(&mut ctx)));
        if outcome.is_err() {
            team.poisoned.store(true, Ordering::Release);
        }
        // Retire so barriers held by still-running lanes complete.
        exec.barrier.retire();
        warp.retire_lane();
        exec.barrier_counts[lane].store(ctx.counters.barriers, Ordering::Relaxed);
        stats.absorb(&ctx.counters);

        // Step 3: whole team finishes the block before reusing the slot.
        team.gate.wait();
        if lane == 0 {
            if let Some(san) = san {
                scan_barrier_divergence(san, cfg, (bx, by, bz), &exec.barrier_counts);
            }
            stats.block_done();
        }
        match outcome {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) if team.poisoned.load(Ordering::Acquire) => break,
            Ok(()) => {}
        }
    }
}

/// Synccheck's deterministic barrier-divergence scan, run once per block
/// after all lanes retired. A lane that executed some `sync_threads` calls
/// but fewer than the block's maximum abandoned its siblings at a barrier
/// it never reached. Lanes with a zero count never entered the barrier
/// protocol — the blessed guarded-early-return pattern (exited threads
/// count as arrived) — and are not flagged.
fn scan_barrier_divergence(
    san: &LaunchSan,
    cfg: &LaunchConfig,
    block: (u32, u32, u32),
    counts: &[std::sync::atomic::AtomicU64],
) {
    if !san.state().tool_on(ToolMask::SYNCCHECK) {
        return;
    }
    let vals: Vec<u64> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let Some(&maxc) = vals.iter().max() else { return };
    for (lane, &c) in vals.iter().enumerate() {
        if c > 0 && c < maxc {
            let (tx, ty, tz) = cfg.block.delinear(lane);
            san.state().barrier_divergence(
                AccessSite {
                    kernel: san.kernel(),
                    block,
                    thread: (tx, ty, tz),
                    block_rank: cfg.grid.linear(block.0, block.1, block.2),
                },
                c,
                maxc,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceProfile};
    use crate::mem::DBuf;

    fn dev() -> Device {
        Device::new(DeviceProfile::test_small())
    }

    #[test]
    fn every_thread_runs_exactly_once_serial() {
        let d = dev();
        let hits = d.alloc::<u32>(4 * 32);
        let k = Kernel::new("mark", {
            let hits = hits.clone();
            move |ctx: &mut ThreadCtx| {
                let i = ctx.global_rank();
                ctx.atomic_add(&hits, i, 1);
            }
        });
        let stats = d.launch(&k, LaunchConfig::new(4u32, 32u32)).unwrap();
        assert_eq!(stats.threads_executed, 128);
        assert_eq!(stats.blocks_executed, 4);
        assert!(hits.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn every_thread_runs_exactly_once_team() {
        let d = dev();
        let hits = d.alloc::<u32>(6 * 16);
        let k = Kernel::with_flags(
            "mark_sync",
            KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            {
                let hits = hits.clone();
                move |ctx: &mut ThreadCtx| {
                    ctx.sync_threads();
                    let i = ctx.global_rank();
                    ctx.atomic_add(&hits, i, 1);
                    ctx.sync_threads();
                }
            },
        );
        let stats = d.launch(&k, LaunchConfig::new(6u32, 16u32)).unwrap();
        assert_eq!(stats.threads_executed, 96);
        assert_eq!(stats.blocks_executed, 6);
        assert!(hits.to_vec().iter().all(|&v| v == 1));
        assert_eq!(stats.barriers, 2 * 96);
    }

    #[test]
    fn shared_memory_tile_pattern() {
        // The canonical use of shared memory: stage, barrier, read others'
        // elements. Each thread writes its id, then reads its neighbour's.
        let d = dev();
        let tpb = 16usize;
        let out: DBuf<u32> = d.alloc(3 * tpb);
        let mut cfg = LaunchConfig::new(3u32, tpb as u32);
        let slot = cfg.shared_array::<u32>(tpb);
        let k = Kernel::with_flags(
            "tile",
            KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            {
                let out = out.clone();
                move |ctx: &mut ThreadCtx| {
                    let tile = ctx.shared::<u32>(slot);
                    let t = ctx.thread_rank();
                    ctx.swrite(&tile, t, (ctx.global_rank() * 10) as u32);
                    ctx.sync_threads();
                    let neighbour = (t + 1) % ctx.block_dim_x();
                    let v = ctx.sread(&tile, neighbour);
                    ctx.write(&out, ctx.global_rank(), v);
                }
            },
        );
        d.launch(&k, cfg).unwrap();
        let got = out.to_vec();
        for b in 0..3usize {
            for t in 0..tpb {
                let neighbour_global = b * tpb + (t + 1) % tpb;
                assert_eq!(got[b * tpb + t], (neighbour_global * 10) as u32);
            }
        }
    }

    #[test]
    fn early_return_does_not_hang_barriers() {
        // Half the lanes return before the barrier (the guarded-if pattern);
        // CUDA semantics: exited threads count as arrived.
        let d = dev();
        let out = d.alloc::<u32>(16);
        let k = Kernel::with_flags(
            "early",
            KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            {
                let out = out.clone();
                move |ctx: &mut ThreadCtx| {
                    let t = ctx.thread_rank();
                    if t >= 8 {
                        return;
                    }
                    ctx.sync_threads();
                    ctx.write(&out, t, 1);
                }
            },
        );
        d.launch(&k, LaunchConfig::new(1u32, 16u32)).unwrap();
        assert_eq!(out.to_vec()[..8], vec![1u32; 8][..]);
    }

    #[test]
    fn warp_shuffle_inside_kernel() {
        let d = dev(); // warp_size = 4
        let out = d.alloc::<u32>(8);
        let k = Kernel::with_flags(
            "shfl",
            KernelFlags { uses_block_sync: false, uses_warp_ops: true },
            {
                let out = out.clone();
                move |ctx: &mut ThreadCtx| {
                    let v = ctx.thread_rank() as u32;
                    let got = ctx.shfl(v, 0); // broadcast lane 0 of each warp
                    ctx.write(&out, ctx.thread_rank(), got);
                }
            },
        );
        d.launch(&k, LaunchConfig::new(1u32, 8u32)).unwrap();
        // warps of width 4: lanes 0-3 get 0, lanes 4-7 get 4.
        assert_eq!(out.to_vec(), vec![0, 0, 0, 0, 4, 4, 4, 4]);
    }

    #[test]
    fn multidim_identity_is_consistent() {
        let d = dev();
        let cfg = LaunchConfig::new([2u32, 3, 1], [4u32, 2, 1]);
        let total = cfg.total_threads();
        let seen = d.alloc::<u32>(total);
        let k = Kernel::new("ident", {
            let seen = seen.clone();
            move |ctx: &mut ThreadCtx| {
                assert_eq!(
                    ctx.global_thread_id_x(),
                    ctx.block_id_x() * ctx.block_dim_x() + ctx.thread_id_x()
                );
                assert!(ctx.thread_id_y() < ctx.block_dim_y());
                assert!(ctx.block_id_y() < ctx.grid_dim_y());
                ctx.atomic_add(&seen, ctx.global_rank(), 1);
            }
        });
        let stats = d.launch(&k, cfg).unwrap();
        assert_eq!(stats.threads_executed as usize, total);
        assert!(seen.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn stats_count_memory_traffic() {
        let d = dev();
        let a = d.alloc_from(&[1.0f32; 64]);
        let b = d.alloc::<f32>(64);
        let k = Kernel::new("copy", {
            let (a, b) = (a.clone(), b.clone());
            move |ctx: &mut ThreadCtx| {
                let i = ctx.global_thread_id_x();
                let v = ctx.read(&a, i);
                ctx.flops(1);
                ctx.write(&b, i, v + 1.0);
            }
        });
        let stats = d.launch(&k, LaunchConfig::linear(64, 32)).unwrap();
        assert_eq!(stats.global_load_bytes, 64 * 4);
        assert_eq!(stats.global_store_bytes, 64 * 4);
        assert_eq!(stats.flops, 64);
        assert_eq!(b.to_vec(), vec![2.0f32; 64]);
    }

    #[test]
    fn flags_drift_is_reported_and_degraded_under_synccheck() {
        use crate::san::{DiagKind, SanState, ToolMask};
        let d = dev();
        let out = d.alloc::<u32>(8);
        // Uses sync_threads and a shuffle without declaring either flag:
        // the executor picks the serial path, and the session must surface
        // that as a structured KernelFlagsDrift finding instead of a panic.
        let k = Kernel::new("drifted", {
            let out = out.clone();
            move |ctx: &mut ThreadCtx| {
                let t = ctx.thread_rank();
                ctx.sync_threads();
                let v = ctx.shfl(t as u32, 0);
                ctx.write(&out, t, v);
            }
        });
        let san = SanState::new(ToolMask::SYNCCHECK);
        d.attach_sanitizer(Arc::clone(&san));
        d.launch(&k, LaunchConfig::new(1u32, 8u32)).unwrap();
        d.detach_sanitizer();
        let diags = san.diagnostics();
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|g| g.kind == DiagKind::KernelFlagsDrift));
        assert!(diags[0].message.contains("uses_block_sync"));
        // Degraded shuffle: every lane received its own value.
        assert_eq!(out.to_vec(), (0..8).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "uses_block_sync")]
    fn flags_drift_panics_without_a_session() {
        let d = dev();
        let k = Kernel::new("drifted", |ctx: &mut ThreadCtx| {
            ctx.sync_threads();
        });
        let _ = d.launch(&k, LaunchConfig::new(1u32, 8u32));
    }

    #[test]
    fn single_thread_block_sync_is_noop_on_serial_path() {
        let d = dev();
        let k = Kernel::new("solo", |ctx: &mut ThreadCtx| {
            ctx.sync_threads(); // block of one: trivially fine
        });
        let stats = d.launch(&k, LaunchConfig::new(4u32, 1u32)).unwrap();
        assert_eq!(stats.barriers, 4);
    }
}
