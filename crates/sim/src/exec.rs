//! The kernel executor: runs every simulated GPU thread, really.
//!
//! Two execution paths share identical semantics as far as a kernel can
//! observe:
//!
//! * **Serial path** — for kernels with no intra-block synchronization
//!   (`KernelFlags` default). Blocks are distributed over host worker
//!   threads; within a block, lanes run one after another. This is the fast
//!   path: most of the HeCBench kernels (XSBench, RSBench, Adam, SU3) are
//!   barrier-free.
//! * **Team path** — for kernels that use `sync_threads`, warp shuffles, or
//!   warp barriers. A small number of *teams* is spawned, each consisting of
//!   one OS thread per lane of a block; teams claim blocks from a shared
//!   counter and execute them with true intra-block concurrency. Barriers
//!   park rather than spin because lanes heavily oversubscribe host cores
//!   (see [`crate::barrier`]).
//!
//! The choice mirrors what the MCUDA line of work (cited in the paper's
//! related work) calls "deep fission" vs true threading; we keep kernels
//! unmodified and pay for threads only when the kernel needs them.

use crate::barrier::{RetireBarrier, SenseBarrier};
use crate::counters::{CostCounters, KernelStats, StatsSnapshot};
use crate::dim::LaunchConfig;
use crate::memtrace::LaunchMemTrace;
use crate::san::{AccessSite, DiagLog, LaunchSan, ToolMask};
use crate::shared::BlockShared;
use crate::thread::ThreadCtx;
use crate::warp::WarpGroup;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A panic payload carried out of a worker thread so the launch can finish
/// its deterministic merges before the panic resumes.
type PanicPayload = Box<dyn std::any::Any + Send>;

/// Static properties of a kernel that the executor must know up front.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelFlags {
    /// Kernel calls `sync_threads` (block-wide barrier).
    pub uses_block_sync: bool,
    /// Kernel calls `sync_warp`, shuffles, or ballots.
    pub uses_warp_ops: bool,
}

impl KernelFlags {
    /// Does this kernel require the barrier-capable team path?
    pub fn needs_team_execution(&self) -> bool {
        self.uses_block_sync || self.uses_warp_ops
    }
}

/// A device kernel: a name (for diagnostics and codegen-profile lookup),
/// executor-relevant flags, and the per-thread body.
#[derive(Clone)]
pub struct Kernel {
    name: String,
    flags: KernelFlags,
    body: Arc<dyn Fn(&mut ThreadCtx) + Send + Sync>,
}

impl Kernel {
    /// A barrier-free kernel (eligible for the serial fast path).
    pub fn new(
        name: impl Into<String>,
        body: impl Fn(&mut ThreadCtx) + Send + Sync + 'static,
    ) -> Self {
        Kernel { name: name.into(), flags: KernelFlags::default(), body: Arc::new(body) }
    }

    /// A kernel with explicit executor flags.
    pub fn with_flags(
        name: impl Into<String>,
        flags: KernelFlags,
        body: impl Fn(&mut ThreadCtx) + Send + Sync + 'static,
    ) -> Self {
        Kernel { name: name.into(), flags, body: Arc::new(body) }
    }

    /// Mark the kernel as using block-wide barriers.
    pub fn with_block_sync(mut self) -> Self {
        self.flags.uses_block_sync = true;
        self
    }

    /// Mark the kernel as using warp-level collectives.
    pub fn with_warp_ops(mut self) -> Self {
        self.flags.uses_warp_ops = true;
        self
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Executor flags.
    pub fn flags(&self) -> KernelFlags {
        self.flags
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kernel({}, {:?})", self.name, self.flags)
    }
}

/// Execute `kernel` over the whole grid and return aggregated statistics.
/// `san` is the launch's sanitizer context when a session is attached to
/// the device. `workers` is the host worker-thread budget (see
/// [`default_workers`]); `1` is the reference serial mode.
pub fn run(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
    workers: usize,
) -> StatsSnapshot {
    run_bounded(kernel, cfg, warp_size, san, mem, workers, cfg.num_blocks())
}

/// Execute only the first `limit` blocks (in grid-linearization order) —
/// the committed prefix of a watchdog-killed launch. Semantics within the
/// prefix are identical to [`run`]: sanitizer and memtrace hooks observe
/// exactly the blocks that committed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_prefix(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
    workers: usize,
    limit: usize,
) -> StatsSnapshot {
    run_bounded(kernel, cfg, warp_size, san, mem, workers, limit.min(cfg.num_blocks()))
}

fn run_bounded(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
    workers: usize,
    num_blocks: usize,
) -> StatsSnapshot {
    let stats = KernelStats::new();
    let payload = if kernel.flags.needs_team_execution() && cfg.threads_per_block() > 1 {
        run_team(kernel, cfg, warp_size, &stats, san, mem, workers, num_blocks)
    } else {
        run_serial(kernel, cfg, warp_size, &stats, san, mem, workers, num_blocks)
    };
    // Deterministic merges happen even when the launch panicked, so a
    // failing kernel still leaves canonically ordered partial evidence.
    if let Some(san) = san {
        san.finish();
    }
    if let Some(mem) = mem {
        mem.finish();
    }
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
    stats.snapshot()
}

/// Shared-memory tooling configuration for a launch: an attached sanitizer
/// session with racecheck turns the per-cell race fold on, one with
/// initcheck turns the init bitmap on.
fn block_shared(cfg: &LaunchConfig, san: Option<&LaunchSan>) -> BlockShared {
    let session_race = san.is_some_and(|s| s.state().tool_on(ToolMask::RACECHECK));
    let session_init = san.is_some_and(|s| s.state().tool_on(ToolMask::INITCHECK));
    BlockShared::with_tools(&cfg.shared_slots, session_race, session_init)
}

/// Process-global worker override set by [`set_global_workers`] (0 = unset).
static GLOBAL_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count for every subsequent launch in this process,
/// taking precedence over `OMPX_SIM_WORKERS`. `None` removes the override.
/// Benchmarks use this to switch between the reference serial mode
/// (`Some(1)`) and full parallelism without re-execing.
pub fn set_global_workers(workers: Option<usize>) {
    GLOBAL_WORKERS.store(workers.map_or(0, |w| w.max(1)), Ordering::Relaxed);
}

/// Resolve the launch worker-thread budget: the process-global override,
/// then the `OMPX_SIM_WORKERS` environment variable, then the host's
/// available parallelism. `1` selects the reference serial mode (one worker
/// claims every block); results are bit-identical at any setting.
pub fn default_workers() -> usize {
    let forced = GLOBAL_WORKERS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("OMPX_SIM_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Serial path: blocks spread over workers, lanes of a block run in sequence.
#[allow(clippy::too_many_arguments)]
fn run_serial(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    stats: &KernelStats,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
    workers: usize,
    num_blocks: usize,
) -> Option<PanicPayload> {
    let workers = workers.clamp(1, num_blocks.max(1));
    let next_block = AtomicUsize::new(0);
    // Sticky poison: once any worker sees a lane panic, no worker claims
    // another block, so sanitizer/memtrace state never includes
    // post-failure blocks (matching the team path's semantics).
    let poisoned = AtomicBool::new(false);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let tpb = cfg.threads_per_block();
                    loop {
                        if poisoned.load(Ordering::Acquire) {
                            break;
                        }
                        let b = next_block.fetch_add(1, Ordering::Relaxed);
                        if b >= num_blocks {
                            break;
                        }
                        let shared = block_shared(cfg, san);
                        let (bx, by, bz) = cfg.grid.delinear(b);
                        let mut block_counters = CostCounters::default();
                        let mut failed = None;
                        for t in 0..tpb {
                            let (tx, ty, tz) = cfg.block.delinear(t);
                            let mut ctx = ThreadCtx {
                                block: (bx, by, bz),
                                thread: (tx, ty, tz),
                                grid_dim: cfg.grid,
                                block_dim: cfg.block,
                                warp_size,
                                counters: CostCounters::default(),
                                shared: &shared,
                                block_barrier: None,
                                warp: None,
                                collective_count: 0,
                                san,
                                mem,
                                trace_log: Default::default(),
                                diag_log: Default::default(),
                            };
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    (kernel.body)(&mut ctx)
                                }));
                            block_counters.merge(&ctx.counters);
                            ctx.stage_logs();
                            if let Err(p) = outcome {
                                failed = Some(p);
                                break;
                            }
                        }
                        stage_block_scan(san, cfg, (bx, by, bz), b, &shared, None);
                        if let Some(p) = failed {
                            poisoned.store(true, Ordering::Release);
                            // Re-raise with the original message; the block's
                            // stats are not absorbed (it did not commit).
                            std::panic::resume_unwind(p);
                        }
                        stats.absorb_block(&block_counters, tpb as u64);
                        stats.block_done();
                    }
                })
            })
            .collect();
        // Join every worker so a simulated-program panic surfaces with its
        // original message instead of "a scoped thread panicked".
        let mut payload = None;
        for h in handles {
            if let Err(p) = h.join() {
                payload.get_or_insert(p);
            }
        }
        payload
    })
}

/// Block-end deterministic scans, staged as the block's final diagnostic
/// group: the shared-memory race folds in (slot, cell, epoch) order, then
/// synccheck's barrier-divergence scan (team path only).
fn stage_block_scan(
    san: Option<&LaunchSan>,
    cfg: &LaunchConfig,
    block: (u32, u32, u32),
    block_rank: usize,
    shared: &BlockShared,
    barrier_counts: Option<&[std::sync::atomic::AtomicU64]>,
) {
    let Some(san) = san else { return };
    let mut log = DiagLog::default();
    for (slot, race) in shared.collect_races() {
        let (tx, ty, tz) = cfg.block.delinear(race.this_lane);
        let site = AccessSite { kernel: san.kernel(), block, thread: (tx, ty, tz), block_rank };
        san.state().shared_race(site, slot, race, &mut log);
    }
    if let Some(counts) = barrier_counts {
        scan_barrier_divergence(san, cfg, block, block_rank, counts, &mut log);
    }
    san.stage_block_scan(block_rank, log);
}

/// Shared state of one executing block on the team path.
struct BlockExec {
    shared: BlockShared,
    warps: Vec<WarpGroup>,
    barrier: RetireBarrier,
    /// Final `sync_threads` count of each lane, written as the lane retires
    /// and scanned once the block completes: lanes that participated in
    /// barriers but stopped short of the block's maximum diverged
    /// (synccheck).
    barrier_counts: Vec<std::sync::atomic::AtomicU64>,
}

/// Per-team coordination state.
struct TeamState {
    /// Block index currently being executed (usize::MAX = none yet).
    current_block: AtomicUsize,
    /// Rendezvous for the team's lanes between protocol steps.
    gate: SenseBarrier,
    /// The state of the block being executed.
    exec: Mutex<Option<Arc<BlockExec>>>,
    /// Set when a lane panicked: the whole team stops after the current
    /// block (a sticky error, like a device-side assert).
    poisoned: AtomicBool,
}

/// Team path: real intra-block concurrency with barrier support.
#[allow(clippy::too_many_arguments)]
fn run_team(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    stats: &KernelStats,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
    workers: usize,
    num_blocks: usize,
) -> Option<PanicPayload> {
    let tpb = cfg.threads_per_block();
    // Enough teams to keep the workers busy, but no more than there are
    // blocks and never an absurd number of OS threads. `workers == 1` is
    // the reference serial mode: a single team claims every block.
    let teams = ((workers * 2) / tpb).clamp(1, 8).min(num_blocks).max(1);
    let next_block = Arc::new(AtomicUsize::new(0));
    // Launch-wide sticky poison: after any lane panics, no team claims
    // another block.
    let launch_poisoned = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(teams * tpb);
        for _ in 0..teams {
            let team = Arc::new(TeamState {
                current_block: AtomicUsize::new(usize::MAX),
                gate: SenseBarrier::new(tpb),
                exec: Mutex::new(None),
                poisoned: AtomicBool::new(false),
            });
            for lane in 0..tpb {
                let team = Arc::clone(&team);
                let next_block = Arc::clone(&next_block);
                let launch_poisoned = Arc::clone(&launch_poisoned);
                let stats = &*stats;
                handles.push(s.spawn(move || {
                    lane_loop(
                        kernel,
                        cfg,
                        warp_size,
                        lane,
                        &team,
                        &next_block,
                        &launch_poisoned,
                        stats,
                        san,
                        mem,
                        num_blocks,
                    )
                }));
            }
        }
        let mut payload = None;
        for h in handles {
            if let Err(p) = h.join() {
                payload.get_or_insert(p);
            }
        }
        payload
    })
}

fn build_warps(tpb: usize, warp_size: u32) -> Vec<WarpGroup> {
    let ws = warp_size as usize;
    let num_warps = tpb.div_ceil(ws);
    (0..num_warps)
        .map(|w| {
            let lanes = ws.min(tpb - w * ws) as u32;
            WarpGroup::new(lanes)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn lane_loop(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    warp_size: u32,
    lane: usize,
    team: &TeamState,
    next_block: &AtomicUsize,
    launch_poisoned: &AtomicBool,
    stats: &KernelStats,
    san: Option<&LaunchSan>,
    mem: Option<&LaunchMemTrace>,
    num_blocks: usize,
) {
    let tpb = cfg.threads_per_block();
    loop {
        // Step 1: lane 0 claims the next block; everyone learns it. A
        // poisoned launch claims nothing more: the sentinel makes every
        // lane of every team exit at its next claim.
        if lane == 0 {
            let b = if launch_poisoned.load(Ordering::Acquire) {
                num_blocks
            } else {
                next_block.fetch_add(1, Ordering::Relaxed)
            };
            team.current_block.store(b, Ordering::Release);
            if b < num_blocks {
                *team.exec.lock() = Some(Arc::new(BlockExec {
                    shared: block_shared(cfg, san),
                    warps: build_warps(tpb, warp_size),
                    barrier: RetireBarrier::new(tpb),
                    barrier_counts: (0..tpb)
                        .map(|_| std::sync::atomic::AtomicU64::new(0))
                        .collect(),
                }));
            }
        }
        team.gate.wait();
        let b = team.current_block.load(Ordering::Acquire);
        if b >= num_blocks {
            break; // all lanes observe the same sentinel and exit together
        }
        // Executor invariant, not host-side misuse: the scheduler stores
        // every team's exec before any lane reaches this point, so a miss
        // here is a simulator bug and deliberately panics (see error.rs).
        let exec = team.exec.lock().as_ref().expect("block exec must be set").clone();

        // Step 2: run this lane. The body may panic (simulated-program bug,
        // e.g. an out-of-bounds access or a detected data race); sibling
        // lanes could then wait forever on this lane's barriers, so the
        // panic is caught, the lane retires from its barriers, the block
        // protocol completes, and the panic is resumed afterwards so the
        // launch still fails loudly.
        let (bx, by, bz) = cfg.grid.delinear(b);
        let (tx, ty, tz) = cfg.block.delinear(lane);
        let warp = &exec.warps[lane / warp_size as usize];
        let mut ctx = ThreadCtx {
            block: (bx, by, bz),
            thread: (tx, ty, tz),
            grid_dim: cfg.grid,
            block_dim: cfg.block,
            warp_size,
            counters: CostCounters::default(),
            shared: &exec.shared,
            block_barrier: Some(&exec.barrier),
            warp: Some(warp),
            collective_count: 0,
            san,
            mem,
            trace_log: Default::default(),
            diag_log: Default::default(),
        };
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (kernel.body)(&mut ctx)));
        if outcome.is_err() {
            team.poisoned.store(true, Ordering::Release);
            launch_poisoned.store(true, Ordering::Release);
        }
        // Retire so barriers held by still-running lanes complete.
        exec.barrier.retire();
        warp.retire_lane();
        exec.barrier_counts[lane].store(ctx.counters.barriers, Ordering::Relaxed);
        stats.absorb(&ctx.counters);
        ctx.stage_logs();

        // Step 3: whole team finishes the block before reusing the slot.
        team.gate.wait();
        if lane == 0 {
            stage_block_scan(san, cfg, (bx, by, bz), b, &exec.shared, Some(&exec.barrier_counts));
            stats.block_done();
        }
        match outcome {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) if team.poisoned.load(Ordering::Acquire) => break,
            Ok(()) => {}
        }
    }
}

/// Synccheck's deterministic barrier-divergence scan, run once per block
/// after all lanes retired. A lane that executed some `sync_threads` calls
/// but fewer than the block's maximum abandoned its siblings at a barrier
/// it never reached. Lanes with a zero count never entered the barrier
/// protocol — the blessed guarded-early-return pattern (exited threads
/// count as arrived) — and are not flagged.
fn scan_barrier_divergence(
    san: &LaunchSan,
    cfg: &LaunchConfig,
    block: (u32, u32, u32),
    block_rank: usize,
    counts: &[std::sync::atomic::AtomicU64],
    log: &mut DiagLog,
) {
    if !san.state().tool_on(ToolMask::SYNCCHECK) {
        return;
    }
    let vals: Vec<u64> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let Some(&maxc) = vals.iter().max() else { return };
    for (lane, &c) in vals.iter().enumerate() {
        if c > 0 && c < maxc {
            let (tx, ty, tz) = cfg.block.delinear(lane);
            san.state().barrier_divergence(
                AccessSite { kernel: san.kernel(), block, thread: (tx, ty, tz), block_rank },
                c,
                maxc,
                log,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceProfile};
    use crate::mem::DBuf;

    fn dev() -> Device {
        Device::new(DeviceProfile::test_small())
    }

    #[test]
    fn every_thread_runs_exactly_once_serial() {
        let d = dev();
        let hits = d.alloc::<u32>(4 * 32);
        let k = Kernel::new("mark", {
            let hits = hits.clone();
            move |ctx: &mut ThreadCtx| {
                let i = ctx.global_rank();
                ctx.atomic_add(&hits, i, 1);
            }
        });
        let stats = d.launch(&k, LaunchConfig::new(4u32, 32u32)).unwrap();
        assert_eq!(stats.threads_executed, 128);
        assert_eq!(stats.blocks_executed, 4);
        assert!(hits.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn every_thread_runs_exactly_once_team() {
        let d = dev();
        let hits = d.alloc::<u32>(6 * 16);
        let k = Kernel::with_flags(
            "mark_sync",
            KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            {
                let hits = hits.clone();
                move |ctx: &mut ThreadCtx| {
                    ctx.sync_threads();
                    let i = ctx.global_rank();
                    ctx.atomic_add(&hits, i, 1);
                    ctx.sync_threads();
                }
            },
        );
        let stats = d.launch(&k, LaunchConfig::new(6u32, 16u32)).unwrap();
        assert_eq!(stats.threads_executed, 96);
        assert_eq!(stats.blocks_executed, 6);
        assert!(hits.to_vec().iter().all(|&v| v == 1));
        assert_eq!(stats.barriers, 2 * 96);
    }

    #[test]
    fn shared_memory_tile_pattern() {
        // The canonical use of shared memory: stage, barrier, read others'
        // elements. Each thread writes its id, then reads its neighbour's.
        let d = dev();
        let tpb = 16usize;
        let out: DBuf<u32> = d.alloc(3 * tpb);
        let mut cfg = LaunchConfig::new(3u32, tpb as u32);
        let slot = cfg.shared_array::<u32>(tpb);
        let k = Kernel::with_flags(
            "tile",
            KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            {
                let out = out.clone();
                move |ctx: &mut ThreadCtx| {
                    let tile = ctx.shared::<u32>(slot);
                    let t = ctx.thread_rank();
                    ctx.swrite(&tile, t, (ctx.global_rank() * 10) as u32);
                    ctx.sync_threads();
                    let neighbour = (t + 1) % ctx.block_dim_x();
                    let v = ctx.sread(&tile, neighbour);
                    ctx.write(&out, ctx.global_rank(), v);
                }
            },
        );
        d.launch(&k, cfg).unwrap();
        let got = out.to_vec();
        for b in 0..3usize {
            for t in 0..tpb {
                let neighbour_global = b * tpb + (t + 1) % tpb;
                assert_eq!(got[b * tpb + t], (neighbour_global * 10) as u32);
            }
        }
    }

    #[test]
    fn early_return_does_not_hang_barriers() {
        // Half the lanes return before the barrier (the guarded-if pattern);
        // CUDA semantics: exited threads count as arrived.
        let d = dev();
        let out = d.alloc::<u32>(16);
        let k = Kernel::with_flags(
            "early",
            KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            {
                let out = out.clone();
                move |ctx: &mut ThreadCtx| {
                    let t = ctx.thread_rank();
                    if t >= 8 {
                        return;
                    }
                    ctx.sync_threads();
                    ctx.write(&out, t, 1);
                }
            },
        );
        d.launch(&k, LaunchConfig::new(1u32, 16u32)).unwrap();
        assert_eq!(out.to_vec()[..8], vec![1u32; 8][..]);
    }

    #[test]
    fn warp_shuffle_inside_kernel() {
        let d = dev(); // warp_size = 4
        let out = d.alloc::<u32>(8);
        let k = Kernel::with_flags(
            "shfl",
            KernelFlags { uses_block_sync: false, uses_warp_ops: true },
            {
                let out = out.clone();
                move |ctx: &mut ThreadCtx| {
                    let v = ctx.thread_rank() as u32;
                    let got = ctx.shfl(v, 0); // broadcast lane 0 of each warp
                    ctx.write(&out, ctx.thread_rank(), got);
                }
            },
        );
        d.launch(&k, LaunchConfig::new(1u32, 8u32)).unwrap();
        // warps of width 4: lanes 0-3 get 0, lanes 4-7 get 4.
        assert_eq!(out.to_vec(), vec![0, 0, 0, 0, 4, 4, 4, 4]);
    }

    #[test]
    fn multidim_identity_is_consistent() {
        let d = dev();
        let cfg = LaunchConfig::new([2u32, 3, 1], [4u32, 2, 1]);
        let total = cfg.total_threads();
        let seen = d.alloc::<u32>(total);
        let k = Kernel::new("ident", {
            let seen = seen.clone();
            move |ctx: &mut ThreadCtx| {
                assert_eq!(
                    ctx.global_thread_id_x(),
                    ctx.block_id_x() * ctx.block_dim_x() + ctx.thread_id_x()
                );
                assert!(ctx.thread_id_y() < ctx.block_dim_y());
                assert!(ctx.block_id_y() < ctx.grid_dim_y());
                ctx.atomic_add(&seen, ctx.global_rank(), 1);
            }
        });
        let stats = d.launch(&k, cfg).unwrap();
        assert_eq!(stats.threads_executed as usize, total);
        assert!(seen.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn stats_count_memory_traffic() {
        let d = dev();
        let a = d.alloc_from(&[1.0f32; 64]);
        let b = d.alloc::<f32>(64);
        let k = Kernel::new("copy", {
            let (a, b) = (a.clone(), b.clone());
            move |ctx: &mut ThreadCtx| {
                let i = ctx.global_thread_id_x();
                let v = ctx.read(&a, i);
                ctx.flops(1);
                ctx.write(&b, i, v + 1.0);
            }
        });
        let stats = d.launch(&k, LaunchConfig::linear(64, 32)).unwrap();
        assert_eq!(stats.global_load_bytes, 64 * 4);
        assert_eq!(stats.global_store_bytes, 64 * 4);
        assert_eq!(stats.flops, 64);
        assert_eq!(b.to_vec(), vec![2.0f32; 64]);
    }

    #[test]
    fn flags_drift_is_reported_and_degraded_under_synccheck() {
        use crate::san::{DiagKind, SanState, ToolMask};
        let d = dev();
        let out = d.alloc::<u32>(8);
        // Uses sync_threads and a shuffle without declaring either flag:
        // the executor picks the serial path, and the session must surface
        // that as a structured KernelFlagsDrift finding instead of a panic.
        let k = Kernel::new("drifted", {
            let out = out.clone();
            move |ctx: &mut ThreadCtx| {
                let t = ctx.thread_rank();
                ctx.sync_threads();
                let v = ctx.shfl(t as u32, 0);
                ctx.write(&out, t, v);
            }
        });
        let san = SanState::new(ToolMask::SYNCCHECK);
        d.attach_sanitizer(Arc::clone(&san));
        d.launch(&k, LaunchConfig::new(1u32, 8u32)).unwrap();
        d.detach_sanitizer();
        let diags = san.diagnostics();
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|g| g.kind == DiagKind::KernelFlagsDrift));
        assert!(diags[0].message.contains("uses_block_sync"));
        // Degraded shuffle: every lane received its own value.
        assert_eq!(out.to_vec(), (0..8).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "uses_block_sync")]
    fn flags_drift_panics_without_a_session() {
        let d = dev();
        let k = Kernel::new("drifted", |ctx: &mut ThreadCtx| {
            ctx.sync_threads();
        });
        let _ = d.launch(&k, LaunchConfig::new(1u32, 8u32));
    }

    #[test]
    fn single_thread_block_sync_is_noop_on_serial_path() {
        let d = dev();
        let k = Kernel::new("solo", |ctx: &mut ThreadCtx| {
            ctx.sync_threads(); // block of one: trivially fine
        });
        let stats = d.launch(&k, LaunchConfig::new(4u32, 1u32)).unwrap();
        assert_eq!(stats.barriers, 4);
    }
}
