//! Warp-level execution state: shuffles, ballots and warp barriers.
//!
//! A warp (NVIDIA, 32 lanes) or wavefront (AMD, 64 lanes) is the unit of
//! lockstep execution on a GPU. The paper's §3.3.2 extensions expose warp
//! synchronization (`ompx_sync_warp`) and warp primitives (`ompx_shfl_sync`)
//! so kernel-language programs can be ported verbatim; this module provides
//! the substrate those APIs lower to.
//!
//! Lanes of a simulated warp run on independent OS threads, so collectives
//! are implemented as rendezvous through per-warp exchange slots:
//!
//! * `shuffle`: every lane publishes its value, a warp barrier orders the
//!   publishes before the reads, lanes read their source lane's slot, and a
//!   second barrier keeps a later collective from overwriting the slots
//!   while stragglers are still reading.
//! * `ballot`: lanes OR their predicate bit into one of two parity-selected
//!   mask words; the parity alternation plus the trailing barrier lets the
//!   phase leader reset the word safely for its next use.
//!
//! As on real hardware, a warp collective must be executed by every
//! still-active lane of the warp; lanes that return from the kernel early
//! retire from the warp barrier, matching CUDA's "exited threads do not
//! participate" semantics.

use crate::barrier::RetireBarrier;
use crate::mem::DeviceScalar;
use std::sync::atomic::{AtomicU64, Ordering};

/// Exchange state for one warp of a running thread block.
pub struct WarpGroup {
    /// Per-lane 64-bit transport slots used by shuffles.
    slots: Box<[AtomicU64]>,
    /// Parity-selected ballot accumulation words.
    masks: [AtomicU64; 2],
    /// Rendezvous barrier for the warp's lanes.
    barrier: RetireBarrier,
    /// Number of lanes in this warp (the trailing warp of a block may be
    /// narrower than the device warp width).
    lanes: u32,
}

impl WarpGroup {
    /// Exchange state for a warp of `lanes` threads.
    pub fn new(lanes: u32) -> Self {
        assert!(lanes > 0 && lanes <= 64, "warp width must be in 1..=64, got {lanes}");
        WarpGroup {
            slots: (0..lanes).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into_boxed_slice(),
            masks: [AtomicU64::new(0), AtomicU64::new(0)],
            barrier: RetireBarrier::new(lanes as usize),
            lanes,
        }
    }

    /// Lanes in this warp.
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Warp-wide barrier (`__syncwarp` / `ompx_sync_warp`).
    pub fn sync(&self) {
        self.barrier.wait();
    }

    /// Remove a lane that returned from the kernel early.
    pub fn retire_lane(&self) {
        self.barrier.retire();
    }

    /// Generic shuffle: lane `lane` contributes `val` and receives the value
    /// contributed by `src_lane` (wrapped into range, like CUDA's modular
    /// lane arithmetic).
    ///
    /// Semantic note: on a *partial* trailing warp (block size not a
    /// multiple of the device warp width) the wrap uses the partial lane
    /// count. On real hardware, reading a non-existent lane of a partial
    /// warp is undefined; warp-width-based idioms (XOR butterflies) should
    /// only be used on full warps, as the HeCBench kernels do.
    pub fn shfl<T: DeviceScalar>(&self, lane: u32, val: T, src_lane: u32) -> T {
        debug_assert!(lane < self.lanes);
        self.slots[lane as usize].store(val.to_word(), Ordering::Release);
        self.barrier.wait();
        let src = (src_lane % self.lanes) as usize;
        let word = self.slots[src].load(Ordering::Acquire);
        self.barrier.wait();
        T::from_word(word)
    }

    /// Ballot: every lane contributes a predicate; all lanes receive the
    /// bitmask of lanes whose predicate was true. `op_index` selects the
    /// parity word and must increase by one per collective per lane.
    pub fn ballot(&self, lane: u32, pred: bool, op_index: u64) -> u64 {
        debug_assert!(lane < self.lanes);
        let mask = &self.masks[(op_index % 2) as usize];
        if pred {
            mask.fetch_or(1u64 << lane, Ordering::AcqRel);
        }
        self.barrier.wait();
        let result = mask.load(Ordering::Acquire);
        self.barrier.wait();
        // Each lane clears its *own* bit after the read barrier. Self-
        // clearing (instead of a phase-leader reset) is retirement-safe: a
        // barrier phase completed by RetireBarrier::retire elects no leader,
        // but every lane that contributed a bit clears it before it can
        // return from the kernel and retire — so no stale bit can leak into
        // a later same-parity ballot.
        if pred {
            mask.fetch_and(!(1u64 << lane), Ordering::AcqRel);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn run_warp<F>(lanes: u32, f: F)
    where
        F: Fn(u32, &WarpGroup) + Send + Sync,
    {
        let warp = Arc::new(WarpGroup::new(lanes));
        std::thread::scope(|s| {
            for lane in 0..lanes {
                let w = warp.clone();
                let f = &f;
                s.spawn(move || f(lane, &w));
            }
        });
    }

    #[test]
    fn shfl_broadcast_from_lane_zero() {
        run_warp(8, |lane, w| {
            let got: u32 = w.shfl(lane, lane * 10, 0);
            assert_eq!(got, 0, "lane {lane} should receive lane 0's value");
        });
    }

    #[test]
    fn shfl_rotation_is_a_permutation() {
        run_warp(16, |lane, w| {
            // shfl from (lane+1)%n implements a rotation.
            let got: u64 = w.shfl(lane, lane as u64, lane + 1);
            assert_eq!(got, ((lane + 1) % 16) as u64);
        });
    }

    #[test]
    fn shfl_floats_roundtrip_bit_exact() {
        run_warp(4, |lane, w| {
            let v = -1.5f32 * lane as f32;
            let got: f32 = w.shfl(lane, v, lane); // self-shuffle
            assert_eq!(got, v);
        });
    }

    #[test]
    fn consecutive_shuffles_do_not_interfere() {
        run_warp(8, |lane, w| {
            for round in 0..50u32 {
                let got: u32 = w.shfl(lane, lane + round * 100, 3);
                assert_eq!(got, 3 + round * 100);
            }
        });
    }

    #[test]
    fn ballot_collects_predicates() {
        run_warp(8, |lane, w| {
            let m = w.ballot(lane, lane % 2 == 0, 0);
            assert_eq!(m, 0b0101_0101);
            // Second ballot (other parity) with a different predicate.
            let m = w.ballot(lane, lane < 2, 1);
            assert_eq!(m, 0b0000_0011);
            // Third ballot reuses parity 0; the leader must have reset it.
            let m = w.ballot(lane, lane == 7, 2);
            assert_eq!(m, 0b1000_0000);
        });
    }

    #[test]
    fn warp_reduction_via_shfl_down() {
        // The canonical butterfly reduction built from shuffles.
        run_warp(32, |lane, w| {
            let mut acc = (lane + 1) as u64; // values 1..=32
            let mut offset = 16u32;
            let mut op = 1_000; // arbitrary disjoint op counter space
            while offset > 0 {
                let other: u64 = w.shfl(lane, acc, lane + offset);
                op += 1;
                let _ = op;
                acc += other;
                offset /= 2;
            }
            if lane == 0 {
                assert_eq!(acc, (1..=32u64).sum::<u64>());
            }
        });
    }

    #[test]
    fn ballot_mask_clears_even_when_retirement_completes_the_phase() {
        // Lane 3 votes true in ballot #0 and then retires; lanes 0-2 run a
        // later same-parity ballot that must NOT see lane 3's stale bit.
        let warp = Arc::new(WarpGroup::new(4));
        std::thread::scope(|s| {
            for lane in 0..4u32 {
                let w = warp.clone();
                s.spawn(move || {
                    let m = w.ballot(lane, true, 0);
                    assert_eq!(m, 0b1111);
                    if lane == 3 {
                        w.retire_lane();
                        return;
                    }
                    // Different parity, then back to parity 0.
                    let m = w.ballot(lane, false, 1);
                    assert_eq!(m, 0);
                    let m = w.ballot(lane, lane == 0, 2);
                    assert_eq!(m, 0b0001, "stale bit from retired lane leaked");
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "warp width")]
    fn oversized_warp_rejected() {
        let _ = WarpGroup::new(65);
    }
}
