//! The analytical timing model: counted events → modeled execution time.
//!
//! Real-GPU execution time cannot be measured on a CPU-hosted functional
//! simulator, so the reproduction reports *modeled* time computed from the
//! events the kernel actually performed ([`crate::counters::StatsSnapshot`])
//! and three descriptions:
//!
//! 1. the [`crate::device::DeviceProfile`] (hardware parameters),
//! 2. a [`CodegenInfo`] for the kernel as produced by a particular compiler
//!    (registers per thread, static shared memory, binary size, coalescing
//!    quality) — the quantities the paper's own profiling discussion uses to
//!    explain every performance delta (SU3 §4.2.3: 24 vs 26 registers and
//!    3.9 KB vs 29 KB binaries; RSBench §4.2.2: 162 registers plus 2 KB of
//!    shared memory; AIDW §4.2.4: demoted shared variables), and
//! 3. a [`ModeOverheads`] describing the execution mode's runtime costs —
//!    near-zero for bare/SPMD kernels, substantial for the OpenMP
//!    generic-mode state machine (the mechanism behind the slow `omp` bars
//!    in Figure 8).
//!
//! The model is a standard occupancy-scaled roofline:
//!
//! ```text
//! occupancy  = f(registers, shared memory, thread/block limits)
//! t_bandwidth = bytes / (BW · coalescing · mem_eff(occupancy))
//! t_latency   = memory ops · latency / (in-flight parallelism)
//! t_compute   = flops / (peak(fp32/fp64 mix) · comp_eff(occupancy))
//! t_body      = max(t_bandwidth, t_latency, t_compute, t_int, t_shared)
//! time        = launch + t_body · icache_penalty + t_barrier + t_atomic
//!               + t_divergence + t_serialized
//! ```
//!
//! Every term is a pure function of its inputs, so modeled times are
//! bit-reproducible across runs and machines.

use crate::counters::StatsSnapshot;
use crate::device::DeviceProfile;
use serde::{Deserialize, Serialize};

/// Compiler-produced properties of a kernel that gate performance.
///
/// On a real system these come from `nvcc --ptxas-options=-v`, `nvdisasm`,
/// or ROCm's `-Rpass-analysis=kernel-resource-usage`; here they are data
/// supplied by the toolchain model (`ompx-klang::toolchain`), with the
/// paper-reported values for the kernels the paper profiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodegenInfo {
    /// Registers allocated per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per block in bytes (beyond the launch config's
    /// declared arrays — e.g. runtime-reserved scratch).
    pub static_smem_bytes: usize,
    /// Device binary size in bytes (i-cache pressure; see SU3 §4.2.3).
    pub binary_bytes: usize,
    /// Fraction of peak DRAM bandwidth achievable by this kernel's access
    /// pattern (coalescing quality), in (0, 1].
    pub coalescing: f64,
    /// Fraction of FLOPs that are double precision.
    pub fp64_fraction: f64,
    /// Fraction of counted shared-memory accesses the compiler demoted to
    /// registers (the AIDW effect, §4.2.4: LLVM/Clang demotes shared
    /// variables that `nvcc` and the ompx prototype keep in shared memory).
    pub shared_demotion: f64,
}

impl Default for CodegenInfo {
    fn default() -> Self {
        CodegenInfo {
            regs_per_thread: 32,
            static_smem_bytes: 0,
            binary_bytes: 8 * 1024,
            coalescing: 0.85,
            fp64_fraction: 0.0,
            shared_demotion: 0.0,
        }
    }
}

/// Execution-mode overheads applied on top of the kernel body time.
///
/// The language runtimes construct these: the native kernel languages and
/// the paper's `ompx_bare` mode are close to free; traditional OpenMP
/// offloading pays runtime initialization at launch and, in generic mode,
/// state-machine costs that scale with the number of parallel regions
/// executed (already *counted* in the stats by `ompx-devicert`; the knobs
/// here cover the parts that are not event-shaped, like launch-time runtime
/// initialization).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModeOverheads {
    /// Extra launch latency in seconds on top of the device's base latency
    /// (device runtime initialization, kernel-state setup).
    pub extra_launch_s: f64,
    /// Multiplier on the kernel body time (catch-all for modes that
    /// interpret rather than execute directly; 1.0 = none).
    pub body_multiplier: f64,
    /// Additional cycles charged per executed block (per-block runtime
    /// bookkeeping, e.g. generic-mode kernel-state init).
    pub per_block_cycles: f64,
}

impl ModeOverheads {
    /// No overheads: native kernel languages and `ompx_bare` launches.
    pub fn none() -> Self {
        ModeOverheads { extra_launch_s: 0.0, body_multiplier: 1.0, per_block_cycles: 0.0 }
    }
}

impl Default for ModeOverheads {
    fn default() -> Self {
        Self::none()
    }
}

/// Occupancy analysis result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident blocks per SM permitted by all limits.
    pub blocks_per_sm: u32,
    /// Fraction of the SM's maximum resident threads that are occupied.
    pub occupancy: f64,
    /// Which resource limits the occupancy.
    pub limiter: OccupancyLimiter,
}

/// The resource that bounds occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimiter {
    Registers,
    SharedMemory,
    ThreadsPerSm,
    BlocksPerSm,
}

/// Compute occupancy for a launch on a device.
///
/// `threads_per_block` and `smem_per_block` describe the launch;
/// `regs_per_thread` comes from the codegen profile.
pub fn occupancy(
    dev: &DeviceProfile,
    threads_per_block: u32,
    regs_per_thread: u32,
    smem_per_block: usize,
) -> Occupancy {
    let tpb = threads_per_block.max(1);
    let by_threads = dev.max_threads_per_sm / tpb;
    let by_blocks = dev.max_blocks_per_sm;
    let by_regs = if regs_per_thread > 0 {
        dev.regs_per_sm / (regs_per_thread * tpb).max(1)
    } else {
        u32::MAX
    };
    let by_smem = dev.smem_per_sm.checked_div(smem_per_block).map(|b| b as u32).unwrap_or(u32::MAX);

    let (blocks, limiter) = [
        (by_regs, OccupancyLimiter::Registers),
        (by_smem, OccupancyLimiter::SharedMemory),
        (by_threads, OccupancyLimiter::ThreadsPerSm),
        (by_blocks, OccupancyLimiter::BlocksPerSm),
    ]
    .into_iter()
    .min_by_key(|&(b, _)| b)
    .unwrap();

    // A launch that fits no full block still runs (serially per SM).
    let blocks = blocks.max(1);
    let occ = ((blocks * tpb) as f64 / dev.max_threads_per_sm as f64).min(1.0);
    Occupancy { blocks_per_sm: blocks, occupancy: occ, limiter }
}

/// Modeled execution time with a component breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ModeledTime {
    /// Total modeled seconds.
    pub seconds: f64,
    /// Launch latency (device base + mode extra).
    pub t_launch: f64,
    /// DRAM bandwidth-bound component.
    pub t_bandwidth: f64,
    /// Memory latency-bound component.
    pub t_latency: f64,
    /// Floating-point compute component.
    pub t_compute: f64,
    /// Integer compute component.
    pub t_int: f64,
    /// Shared-memory throughput component.
    pub t_shared: f64,
    /// Block-barrier cost.
    pub t_barrier: f64,
    /// Global atomics cost.
    pub t_atomic: f64,
    /// Divergence penalty.
    pub t_divergence: f64,
    /// Serialized (master-only) runtime sections.
    pub t_serial: f64,
    /// Per-block mode overhead.
    pub t_mode: f64,
    /// Occupancy used for the efficiency scaling.
    pub occupancy: f64,
    /// I-cache penalty multiplier that was applied to compute terms.
    pub icache_penalty: f64,
}

/// Reference occupancancy at which memory latency is considered fully
/// hidden; the efficiency curve saturates here.
const MEM_EFF_REF: f64 = 0.40;
/// Reference occupancy for compute-issue efficiency.
const COMP_EFF_REF: f64 = 0.25;
/// Efficiency floor: even a single resident warp makes some progress.
const EFF_FLOOR: f64 = 0.05;
/// Outstanding memory requests per thread (memory-level parallelism).
const MLP: f64 = 4.0;
/// Average bytes per counted memory operation, used to convert byte counts
/// into request counts for the latency term.
const BYTES_PER_MEM_OP: f64 = 8.0;
/// I-cache penalty strength: compute terms are scaled by
/// `1 + ICACHE_SLOPE * (binary/icache - 1)` when the binary exceeds the
/// device's i-cache-friendly size.
const ICACHE_SLOPE: f64 = 0.08;

fn eff(occ: f64, reference: f64) -> f64 {
    (occ / reference).clamp(EFF_FLOOR, 1.0)
}

/// Model the execution time of one kernel launch.
///
/// * `dev` — hardware profile.
/// * `threads_per_block`, `num_blocks`, `smem_per_block` — launch geometry
///   (`smem_per_block` should already include the codegen static share).
/// * `stats` — counted events (possibly scaled up to the paper's workload).
/// * `cg` — codegen profile for this kernel under the chosen toolchain.
/// * `mode` — execution-mode overheads.
pub fn model_kernel(
    dev: &DeviceProfile,
    threads_per_block: u32,
    num_blocks: u64,
    smem_per_block: usize,
    stats: &StatsSnapshot,
    cg: &CodegenInfo,
    mode: &ModeOverheads,
) -> ModeledTime {
    let occ = occupancy(
        dev,
        threads_per_block,
        cg.regs_per_thread,
        smem_per_block + cg.static_smem_bytes,
    );
    let clock = dev.clock_hz();

    // Streaming kernels saturate DRAM at modest occupancy; random-access
    // kernels (low coalescing) need far more threads in flight to fill the
    // memory pipeline, so their efficiency reference scales up with the
    // coalescing deficit. This is the mechanism that makes register
    // pressure decide XSBench-style latency-bound workloads.
    let mem_ref = (MEM_EFF_REF / cg.coalescing.clamp(0.05, 1.0)).min(1.0);
    let mem_eff = eff(occ.occupancy, mem_ref);
    let comp_eff = eff(occ.occupancy, COMP_EFF_REF);

    // Bandwidth term. Warp-uniform (broadcast) loads are served once per
    // warp, so their per-lane byte count collapses by the warp width.
    let bytes =
        stats.global_bytes() as f64 + stats.uniform_load_bytes as f64 / dev.warp_size as f64;
    let t_bandwidth = bytes / (dev.mem_bw_bytes_per_s * cg.coalescing.clamp(0.05, 1.0) * mem_eff);

    // Latency term: how long the dependent-load chains take given the
    // in-flight parallelism actually available. Poor coalescing multiplies
    // the number of memory transactions the same way it wastes bandwidth.
    let mem_ops = bytes / (BYTES_PER_MEM_OP * cg.coalescing.clamp(0.05, 1.0));
    let resident_threads =
        (dev.sm_count as u64 * occ.blocks_per_sm as u64 * threads_per_block as u64) as f64;
    let total_threads = (num_blocks * threads_per_block as u64).max(1) as f64;
    let in_flight = resident_threads.min(total_threads).max(1.0) * MLP;
    let t_latency = mem_ops * dev.mem_latency_cycles / (clock * in_flight);

    // Compute terms, with the fp32/fp64 mix and an i-cache penalty for
    // oversized device binaries.
    let icache_penalty = if cg.binary_bytes > dev.icache_bytes {
        1.0 + ICACHE_SLOPE * (cg.binary_bytes as f64 / dev.icache_bytes as f64 - 1.0)
    } else {
        1.0
    };
    let flops = stats.flops as f64;
    let fp64 = flops * cg.fp64_fraction;
    let fp32 = flops - fp64;
    let t_compute = fp32 / (dev.fp32_flops * comp_eff) + fp64 / (dev.fp64_flops * comp_eff);
    let t_int = stats.int_ops as f64 / (dev.int_ops_per_s * comp_eff);

    // Constant-cache reads: broadcast-served, roughly 2x the shared path.
    let t_const = stats.const_reads as f64 / (2.0 * dev.shared_ops_per_s * comp_eff);

    // Shared-memory throughput, minus compiler-demoted accesses.
    let effective_shared =
        stats.shared_accesses as f64 * (1.0 - cg.shared_demotion.clamp(0.0, 1.0));
    let t_shared = effective_shared / (dev.shared_ops_per_s * comp_eff);

    // Additive costs.
    // Barriers: `stats.barriers` counts per-thread participations; a barrier
    // of a whole block costs `barrier_cycles` once per warp in the block.
    let warp_barriers = stats.barriers as f64 / dev.warp_size as f64;
    let parallel_sms = (dev.sm_count as f64).min(num_blocks.max(1) as f64);
    let t_barrier = warp_barriers * dev.barrier_cycles / (clock * parallel_sms);
    let t_atomic = stats.atomic_ops as f64 / dev.atomic_ops_per_s;
    // Divergent branches waste roughly half the warp's issue slots.
    let t_divergence = stats.divergent_branches as f64 * (dev.warp_size as f64 / 2.0)
        / (dev.int_ops_per_s * comp_eff);
    // Serialized (master-only) runtime sections run at single-thread scalar
    // speed *within* a block, but the masters of distinct resident blocks
    // run concurrently.
    let parallel_masters =
        ((dev.sm_count as u64 * occ.blocks_per_sm as u64).min(num_blocks.max(1))).max(1) as f64;
    let t_serial = stats.serial_ops as f64 / (clock * parallel_masters);

    // Per-block runtime bring-up is *serialized*: the runtime's team-state
    // initialization funnels through the work distributor, so its cost
    // scales with the raw block count. This single mechanism reproduces
    // both the Adam 8× (40 teams, small kernels) and the Stencil ~150×
    // (half a million teams) generic-mode pathologies of §4.2.5/§4.2.6.
    let t_mode = num_blocks as f64 * mode.per_block_cycles / clock;

    // Oversized device binaries thrash the i-cache; instruction refetch
    // competes with the whole pipeline, so the penalty applies to the body
    // (the SU3 §4.2.3 effect: 29 KB ompx binary vs 3.9 KB CUDA → ~9 %).
    let t_body = t_bandwidth.max(t_latency).max(t_compute).max(t_int).max(t_shared).max(t_const)
        * icache_penalty;
    let t_launch = dev.base_launch_latency_s + mode.extra_launch_s;
    let seconds = t_launch
        + t_body * mode.body_multiplier
        + t_barrier
        + t_atomic
        + t_divergence
        + t_serial
        + t_mode;

    ModeledTime {
        seconds,
        t_launch,
        t_bandwidth,
        t_latency,
        t_compute,
        t_int,
        t_shared,
        t_barrier,
        t_atomic,
        t_divergence,
        t_serial,
        t_mode,
        occupancy: occ.occupancy,
        icache_penalty,
    }
}

impl ModeledTime {
    /// Sum of two modeled times (sequential kernels), keeping breakdowns.
    pub fn plus(&self, other: &ModeledTime) -> ModeledTime {
        ModeledTime {
            seconds: self.seconds + other.seconds,
            t_launch: self.t_launch + other.t_launch,
            t_bandwidth: self.t_bandwidth + other.t_bandwidth,
            t_latency: self.t_latency + other.t_latency,
            t_compute: self.t_compute + other.t_compute,
            t_int: self.t_int + other.t_int,
            t_shared: self.t_shared + other.t_shared,
            t_barrier: self.t_barrier + other.t_barrier,
            t_atomic: self.t_atomic + other.t_atomic,
            t_divergence: self.t_divergence + other.t_divergence,
            t_serial: self.t_serial + other.t_serial,
            t_mode: self.t_mode + other.t_mode,
            occupancy: self.occupancy.max(other.occupancy),
            icache_penalty: self.icache_penalty.max(other.icache_penalty),
        }
    }

    /// The modeled time repeated `n` times (iterated kernel launches).
    pub fn times(&self, n: u64) -> ModeledTime {
        let f = n as f64;
        ModeledTime {
            seconds: self.seconds * f,
            t_launch: self.t_launch * f,
            t_bandwidth: self.t_bandwidth * f,
            t_latency: self.t_latency * f,
            t_compute: self.t_compute * f,
            t_int: self.t_int * f,
            t_shared: self.t_shared * f,
            t_barrier: self.t_barrier * f,
            t_atomic: self.t_atomic * f,
            t_divergence: self.t_divergence * f,
            t_serial: self.t_serial * f,
            t_mode: self.t_mode * f,
            occupancy: self.occupancy,
            icache_penalty: self.icache_penalty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> DeviceProfile {
        DeviceProfile::a100()
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let o = occupancy(&a100(), 1024, 32, 0);
        // 2048 threads/SM, 1024-thread blocks, 32 regs → regs allow 2 blocks.
        assert_eq!(o.blocks_per_sm, 2);
        assert!((o.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        // 128 regs * 256 threads = 32768 regs/block → 2 blocks/SM on A100.
        let o = occupancy(&a100(), 256, 128, 0);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, OccupancyLimiter::Registers);
        assert!((o.occupancy - 0.25).abs() < 1e-12);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        // 100 KB smem/block → 1 block/SM (164 KB per SM).
        let o = occupancy(&a100(), 128, 16, 100 * 1024);
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn occupancy_never_zero() {
        // Even a pathological launch fits one block (serially).
        let o = occupancy(&a100(), 1024, 255, 160 * 1024);
        assert!(o.blocks_per_sm >= 1);
        assert!(o.occupancy > 0.0);
    }

    #[test]
    fn higher_register_use_never_speeds_up_memory_bound_kernels() {
        // The SU3 / XSBench mechanism: more registers → lower occupancy →
        // at most equal, usually worse time for a memory-bound kernel.
        let dev = a100();
        let stats = StatsSnapshot {
            global_load_bytes: 10_000_000_000,
            flops: 1_000_000,
            ..Default::default()
        };
        let mode = ModeOverheads::none();
        let mut last = 0.0f64;
        for regs in [32u32, 64, 96, 128, 255] {
            let cg = CodegenInfo { regs_per_thread: regs, ..Default::default() };
            let t = model_kernel(&dev, 256, 1 << 16, 0, &stats, &cg, &mode).seconds;
            assert!(
                t >= last - 1e-15,
                "regs {regs} gave faster time {t} than lower register count ({last})"
            );
            last = t;
        }
    }

    #[test]
    fn memory_bound_kernel_near_bandwidth_roofline() {
        let dev = a100();
        // 16 GB of traffic, perfectly coalesced, negligible compute.
        let stats = StatsSnapshot { global_load_bytes: 16 << 30, ..Default::default() };
        let cg = CodegenInfo { coalescing: 1.0, regs_per_thread: 32, ..Default::default() };
        let t = model_kernel(&dev, 256, 1 << 20, 0, &stats, &cg, &ModeOverheads::none());
        let ideal = (16u64 << 30) as f64 / dev.mem_bw_bytes_per_s;
        assert!((t.seconds - ideal).abs() / ideal < 0.05, "t={} ideal={}", t.seconds, ideal);
    }

    #[test]
    fn compute_bound_kernel_near_flop_roofline() {
        let dev = a100();
        let stats = StatsSnapshot { flops: 19_500_000_000_000, ..Default::default() };
        let cg = CodegenInfo { regs_per_thread: 32, ..Default::default() };
        let t = model_kernel(&dev, 256, 1 << 20, 0, &stats, &cg, &ModeOverheads::none());
        // 1 second of peak FP32 work.
        assert!((t.seconds - 1.0).abs() < 0.05, "t={}", t.seconds);
    }

    #[test]
    fn fp64_fraction_slows_compute_on_a100() {
        let dev = a100();
        let stats = StatsSnapshot { flops: 1_000_000_000_000, ..Default::default() };
        let f32_only = CodegenInfo { fp64_fraction: 0.0, ..Default::default() };
        let f64_only = CodegenInfo { fp64_fraction: 1.0, ..Default::default() };
        let t32 = model_kernel(&dev, 256, 1 << 20, 0, &stats, &f32_only, &ModeOverheads::none());
        let t64 = model_kernel(&dev, 256, 1 << 20, 0, &stats, &f64_only, &ModeOverheads::none());
        assert!(t64.seconds > t32.seconds * 1.8, "fp64 {} fp32 {}", t64.seconds, t32.seconds);
    }

    #[test]
    fn small_launches_are_latency_dominated() {
        // The Adam mechanism: the same tiny workload with 8x fewer threads
        // has proportionally less latency-hiding parallelism.
        let dev = a100();
        let stats = StatsSnapshot { global_load_bytes: 160_000, ..Default::default() };
        let cg = CodegenInfo::default();
        let wide = model_kernel(&dev, 256, 40, 0, &stats, &cg, &ModeOverheads::none());
        let narrow = model_kernel(&dev, 32, 40, 0, &stats, &cg, &ModeOverheads::none());
        assert!(
            narrow.t_latency > wide.t_latency * 4.0,
            "narrow {} wide {}",
            narrow.t_latency,
            wide.t_latency
        );
    }

    #[test]
    fn icache_penalty_applies_above_threshold() {
        let dev = a100();
        let stats = StatsSnapshot { flops: 1 << 40, ..Default::default() };
        let small = CodegenInfo { binary_bytes: 4 * 1024, ..Default::default() };
        let large = CodegenInfo { binary_bytes: 29 * 1024, ..Default::default() };
        let ts = model_kernel(&dev, 128, 1 << 16, 0, &stats, &small, &ModeOverheads::none());
        let tl = model_kernel(&dev, 128, 1 << 16, 0, &stats, &large, &ModeOverheads::none());
        assert_eq!(ts.icache_penalty, 1.0);
        assert!(tl.icache_penalty > 1.0);
        assert!(tl.seconds > ts.seconds);
    }

    #[test]
    fn mode_overheads_are_additive_and_multiplicative() {
        let dev = a100();
        let stats = StatsSnapshot { global_load_bytes: 1 << 30, ..Default::default() };
        let cg = CodegenInfo::default();
        let bare = model_kernel(&dev, 256, 4096, 0, &stats, &cg, &ModeOverheads::none());
        let generic =
            ModeOverheads { extra_launch_s: 10e-6, body_multiplier: 1.3, per_block_cycles: 2000.0 };
        let slow = model_kernel(&dev, 256, 4096, 0, &stats, &cg, &generic);
        assert!(slow.seconds > bare.seconds + 9e-6);
        assert!(slow.t_mode > 0.0);
    }

    #[test]
    fn serial_ops_charge_single_thread_rate() {
        let dev = a100();
        let stats = StatsSnapshot { serial_ops: 1_410_000_000, ..Default::default() };
        let t =
            model_kernel(&dev, 256, 1, 0, &stats, &CodegenInfo::default(), &ModeOverheads::none());
        // 1.41e9 ops at 1.41 GHz, one block → one master → 1 second.
        assert!((t.t_serial - 1.0).abs() < 1e-9);
    }

    #[test]
    fn masters_of_distinct_blocks_run_concurrently() {
        let dev = a100();
        let stats = StatsSnapshot { serial_ops: 1_410_000_000, ..Default::default() };
        let cg = CodegenInfo::default();
        let one = model_kernel(&dev, 256, 1, 0, &stats, &cg, &ModeOverheads::none());
        let many = model_kernel(&dev, 256, 10_000, 0, &stats, &cg, &ModeOverheads::none());
        // With thousands of blocks the same serialized work spreads over all
        // resident masters.
        assert!(many.t_serial < one.t_serial / 100.0);
    }

    #[test]
    fn plus_and_times_compose() {
        let dev = a100();
        let stats = StatsSnapshot { global_load_bytes: 1 << 28, ..Default::default() };
        let t = model_kernel(
            &dev,
            256,
            1024,
            0,
            &stats,
            &CodegenInfo::default(),
            &ModeOverheads::none(),
        );
        let t3 = t.times(3);
        assert!((t3.seconds - 3.0 * t.seconds).abs() < 1e-12);
        let sum = t.plus(&t);
        assert!((sum.seconds - 2.0 * t.seconds).abs() < 1e-12);
    }
}
