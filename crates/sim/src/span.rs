//! Span events: the timeline data plane for `ompx-prof`.
//!
//! A real profiler (`nsys`, `rocprof`) shows *when* things happened, not
//! just how much they cost: one timeline track for the host thread, one
//! per stream, with kernel bars, H2D/D2H memcpy bars, and arrows from a
//! `nowait` submission to the work it enqueued. This module records the
//! events those views are built from.
//!
//! The attachment follows the ambient pattern the sanitizer and the
//! memory trace established: a profiling harness installs a [`SpanLog`]
//! process-wide ([`SpanLog::install`]); while one is active, the language
//! runtimes (`ompx-klang`, `ompx-hostrt`, `ompx`) record [`Span`]s into it
//! from their launch/memcpy/task paths. When no log is installed the hot
//! paths pay one relaxed atomic load.
//!
//! Timestamps are **modeled seconds**, not wall time: the host track keeps
//! a cursor that advances by each operation's modeled duration, and each
//! stream places its spans at the stream's modeled-busy offset. The
//! resulting timeline is bit-reproducible, like every other modeled
//! quantity in the simulator.
//!
//! `ompx-prof` converts a span list into a multi-track Chrome/Perfetto
//! trace (with flow arrows between `flow_out` and `flow_in` pairs).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Which timeline track a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The submitting host thread.
    Host,
    /// A device stream (interop object), by [`crate::stream::Stream::id`].
    Stream(u64),
    /// OpenMP hidden helper threads (`nowait` target tasks).
    Tasks,
    /// One member of a serving pool (`ompx-serve`), by pool-member index.
    /// Each member gets its own timeline so a serve run renders as one
    /// track per device, like a multi-GPU `nsys` capture.
    Device(usize),
}

/// What kind of work a span represents (drives profiler coloring/legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanCategory {
    /// A kernel execution.
    Kernel,
    /// Host-to-device transfer.
    MemcpyH2D,
    /// Device-to-host transfer.
    MemcpyD2H,
    /// Device-to-device transfer.
    MemcpyD2D,
    /// Allocation, free, memset and other host API calls.
    HostOp,
    /// Task scheduling (nowait submission, helper-thread execution).
    Task,
    /// Synchronization (taskwait, stream/device synchronize).
    Sync,
    /// Retry of a transiently failed operation (fault injection): the
    /// backoff wait and the eventual recovery marker.
    Retry,
    /// Graceful degradation: a target region re-dispatched through the
    /// host-fallback path, or an operation completed past a fault.
    Fallback,
}

impl SpanCategory {
    /// Stable label used in exports.
    pub fn label(&self) -> &'static str {
        match self {
            SpanCategory::Kernel => "kernel",
            SpanCategory::MemcpyH2D => "memcpy_h2d",
            SpanCategory::MemcpyD2H => "memcpy_d2h",
            SpanCategory::MemcpyD2D => "memcpy_d2d",
            SpanCategory::HostOp => "host_op",
            SpanCategory::Task => "task",
            SpanCategory::Sync => "sync",
            SpanCategory::Retry => "retry",
            SpanCategory::Fallback => "fallback",
        }
    }
}

/// One timeline event: a named duration on a track, in modeled seconds.
#[derive(Debug, Clone)]
pub struct Span {
    /// Track the span is drawn on.
    pub track: Track,
    /// Display name (kernel name, "memcpy H2D", …).
    pub name: String,
    /// Category (export coloring, filtering).
    pub cat: SpanCategory,
    /// Start offset on the track's modeled timeline, seconds.
    pub start_s: f64,
    /// Duration in modeled seconds (0.0 renders as an instant).
    pub dur_s: f64,
    /// Bytes moved, for memcpy bars (0 when not applicable).
    pub bytes: u64,
    /// Incoming flow-arrow id (this span is the arrow's head).
    pub flow_in: Option<u64>,
    /// Outgoing flow-arrow id (this span is the arrow's tail).
    pub flow_out: Option<u64>,
    /// Request-scoped trace id: spans recorded while a trace context is
    /// set ([`set_trace_context`]) are stamped with it, so one serving
    /// request's path — batch dispatch, launches, retries, fallbacks —
    /// can be followed across tracks in the exported timeline.
    pub trace: Option<u64>,
}

/// Cheap gate so un-profiled runs pay one atomic load per hook.
static SPAN_LOG_ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE_SPAN_LOG: Mutex<Option<Arc<SpanLog>>> = Mutex::new(None);

/// The ambient request-scoped trace id (`0` = none). A serving layer sets
/// it around one request's execution so every span the runtimes record in
/// that window — launches, memcpys, retries, fallbacks — carries the id.
static CURRENT_TRACE: AtomicU64 = AtomicU64::new(0);

/// Set (or clear, with `None`) the ambient trace id stamped onto every
/// span recorded until the next call. Ids are caller-chosen and must be
/// non-zero (zero is the "no trace" sentinel).
pub fn set_trace_context(trace: Option<u64>) {
    CURRENT_TRACE.store(trace.unwrap_or(0), Ordering::Relaxed);
}

/// The ambient trace id, if one is set.
pub fn current_trace() -> Option<u64> {
    match CURRENT_TRACE.load(Ordering::Relaxed) {
        0 => None,
        id => Some(id),
    }
}

/// The process-wide span log a profiling harness installs, if any.
pub fn active() -> Option<Arc<SpanLog>> {
    if !SPAN_LOG_ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    ACTIVE_SPAN_LOG.lock().clone()
}

/// A shared, thread-safe, append-only span collector.
pub struct SpanLog {
    spans: Mutex<Vec<Span>>,
    /// Modeled-time cursor of the host track.
    host_cursor_s: Mutex<f64>,
    /// Modeled-time cursor of the helper-thread (task) track.
    task_cursor_s: Mutex<f64>,
    next_flow: AtomicU64,
}

impl SpanLog {
    /// Fresh, empty log.
    pub fn new() -> Arc<SpanLog> {
        Arc::new(SpanLog {
            spans: Mutex::new(Vec::new()),
            host_cursor_s: Mutex::new(0.0),
            task_cursor_s: Mutex::new(0.0),
            next_flow: AtomicU64::new(1),
        })
    }

    /// Install `log` as the process-wide active span log. Returns the
    /// previously installed log, if any (callers are expected to
    /// serialize profiled runs, as `ompx-hecbench` does).
    pub fn install(log: Arc<SpanLog>) -> Option<Arc<SpanLog>> {
        let prev = ACTIVE_SPAN_LOG.lock().replace(log);
        SPAN_LOG_ENABLED.store(true, Ordering::Relaxed);
        prev
    }

    /// Remove and return the active span log.
    pub fn uninstall() -> Option<Arc<SpanLog>> {
        SPAN_LOG_ENABLED.store(false, Ordering::Relaxed);
        ACTIVE_SPAN_LOG.lock().take()
    }

    /// Append a fully described span, stamping the ambient trace id onto
    /// spans that do not already carry one.
    pub fn record(&self, mut span: Span) {
        if span.trace.is_none() {
            span.trace = current_trace();
        }
        self.spans.lock().push(span);
    }

    /// Allocate a fresh flow-arrow id (ties a submission span to the
    /// enqueued work's span).
    pub fn new_flow_id(&self) -> u64 {
        self.next_flow.fetch_add(1, Ordering::Relaxed)
    }

    /// Record an operation on the host track at the current cursor and
    /// advance the cursor by `dur_s`.
    pub fn host_op(&self, name: &str, cat: SpanCategory, dur_s: f64, bytes: u64) {
        self.host_op_inner(name, cat, dur_s, bytes, None);
    }

    /// [`SpanLog::host_op`] that also opens a flow arrow; returns the flow
    /// id to pass as `flow_in` of the downstream span.
    pub fn host_op_flow(&self, name: &str, cat: SpanCategory, dur_s: f64, bytes: u64) -> u64 {
        let id = self.new_flow_id();
        self.host_op_inner(name, cat, dur_s, bytes, Some(id));
        id
    }

    fn host_op_inner(
        &self,
        name: &str,
        cat: SpanCategory,
        dur_s: f64,
        bytes: u64,
        flow_out: Option<u64>,
    ) {
        let start_s = {
            let mut cursor = self.host_cursor_s.lock();
            let start = *cursor;
            *cursor += dur_s;
            start
        };
        self.record(Span {
            track: Track::Host,
            name: name.to_string(),
            cat,
            start_s,
            dur_s,
            bytes,
            flow_in: None,
            flow_out,
            trace: None,
        });
    }

    /// Record a span on a stream track at an explicit timeline offset
    /// (streams know their own modeled-busy cursor).
    #[allow(clippy::too_many_arguments)]
    pub fn stream_span(
        &self,
        stream_id: u64,
        name: &str,
        cat: SpanCategory,
        start_s: f64,
        dur_s: f64,
        bytes: u64,
        flow_in: Option<u64>,
    ) {
        self.record(Span {
            track: Track::Stream(stream_id),
            name: name.to_string(),
            cat,
            start_s,
            dur_s,
            bytes,
            flow_in,
            flow_out: None,
            trace: None,
        });
    }

    /// Record a span on a pool-device track at an explicit timeline
    /// offset (the serving layer knows each member's modeled-busy cursor).
    /// `flow_in` ties the span to the submission that enqueued it.
    pub fn device_span(
        &self,
        device: usize,
        name: &str,
        cat: SpanCategory,
        start_s: f64,
        dur_s: f64,
        flow_in: Option<u64>,
    ) {
        self.record(Span {
            track: Track::Device(device),
            name: name.to_string(),
            cat,
            start_s,
            dur_s,
            bytes: 0,
            flow_in,
            flow_out: None,
            trace: None,
        });
    }

    /// Record a helper-thread (task) span at the task track's cursor,
    /// advancing it by `dur_s`.
    pub fn task_span(&self, name: &str, dur_s: f64, flow_in: Option<u64>) {
        let start_s = {
            let mut cursor = self.task_cursor_s.lock();
            let start = *cursor;
            *cursor += dur_s;
            start
        };
        self.record(Span {
            track: Track::Tasks,
            name: name.to_string(),
            cat: SpanCategory::Task,
            start_s,
            dur_s,
            bytes: 0,
            flow_in,
            flow_out: None,
            trace: None,
        });
    }

    /// Current modeled host-track cursor, seconds.
    pub fn host_cursor_seconds(&self) -> f64 {
        *self.host_cursor_s.lock()
    }

    /// Snapshot of all spans recorded so far.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().clone()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cursor_advances_per_op() {
        let log = SpanLog::new();
        log.host_op("malloc", SpanCategory::HostOp, 1e-6, 0);
        log.host_op("memcpy", SpanCategory::MemcpyH2D, 2e-6, 4096);
        let spans = log.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start_s, 0.0);
        assert!((spans[1].start_s - 1e-6).abs() < 1e-18);
        assert_eq!(spans[1].bytes, 4096);
        assert!((log.host_cursor_seconds() - 3e-6).abs() < 1e-18);
    }

    #[test]
    fn flow_ids_pair_submission_with_work() {
        let log = SpanLog::new();
        let flow = log.host_op_flow("nowait submit k", SpanCategory::Task, 0.0, 0);
        log.stream_span(7, "k", SpanCategory::Kernel, 0.0, 5e-6, 0, Some(flow));
        let spans = log.spans();
        assert_eq!(spans[0].flow_out, Some(flow));
        assert_eq!(spans[1].flow_in, Some(flow));
        assert_eq!(spans[1].track, Track::Stream(7));
    }

    #[test]
    fn install_gates_the_ambient_hook() {
        // Not installed: hook sees nothing (other tests may race on the
        // global, so only assert the install/uninstall round trip).
        let log = SpanLog::new();
        let prev = SpanLog::install(Arc::clone(&log));
        assert!(active().is_some());
        let got = SpanLog::uninstall().expect("a log was installed");
        assert!(Arc::ptr_eq(&got, &log));
        if let Some(p) = prev {
            SpanLog::install(p);
        }
    }

    #[test]
    fn device_spans_land_on_their_member_track() {
        let log = SpanLog::new();
        let flow = log.host_op_flow("dispatch batch", SpanCategory::Task, 0.0, 0);
        log.device_span(2, "xsbench/ompx x4", SpanCategory::Kernel, 1e-3, 5e-4, Some(flow));
        let spans = log.spans();
        assert_eq!(spans[1].track, Track::Device(2));
        assert_eq!(spans[1].flow_in, Some(flow));
        assert!((spans[1].start_s - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn trace_context_stamps_recorded_spans() {
        let log = SpanLog::new();
        log.host_op("before", SpanCategory::HostOp, 0.0, 0);
        set_trace_context(Some(41));
        log.host_op("traced", SpanCategory::Kernel, 1e-6, 0);
        set_trace_context(None);
        log.host_op("after", SpanCategory::HostOp, 0.0, 0);
        let spans = log.spans();
        assert_eq!(spans[0].trace, None);
        assert_eq!(spans[1].trace, Some(41));
        assert_eq!(spans[2].trace, None);
    }

    #[test]
    fn task_track_has_its_own_cursor() {
        let log = SpanLog::new();
        log.host_op("submit", SpanCategory::Task, 1e-6, 0);
        log.task_span("k1", 3e-6, None);
        log.task_span("k2", 2e-6, None);
        let spans = log.spans();
        assert_eq!(spans[1].start_s, 0.0);
        assert!((spans[2].start_s - 3e-6).abs() < 1e-18);
        assert_eq!(spans[2].track, Track::Tasks);
    }
}
