//! Streams and events: in-order asynchronous work queues.
//!
//! A stream (§2.4 of the paper) is an ordered queue of device operations;
//! operations in one stream run in sequence, operations in different streams
//! may overlap. The OpenMP side of the reproduction builds on this: an
//! `omp_interop_t` initialized with `targetsync` wraps one of these streams,
//! and the paper's extended `depend(interopobj: obj)` clause enqueues a
//! `nowait` target region into it (§3.5).
//!
//! Each stream owns a host worker thread that drains its queue, so `nowait`
//! work is *really* asynchronous with respect to the submitting thread —
//! the same observable behaviour as CUDA streams, minus the silicon.

use crate::device::Device;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

type Work = Box<dyn FnOnce() + Send>;

/// Process-wide stream id allocator: ids name per-stream tracks in
/// profiler timelines and stay unique for the life of the process.
static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(1);

/// Utilization/overlap counters of one stream, as a plain snapshot — the
/// public stats API `ompx-prof` reports stream overlap from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Process-unique stream id (profiler track id).
    pub id: u64,
    /// Operations enqueued over the stream's lifetime.
    pub submitted: u64,
    /// Operations fully executed.
    pub completed: u64,
    /// Operations still pending.
    pub pending: u64,
    /// Modeled device-busy seconds accumulated on this stream.
    pub modeled_busy_s: f64,
    /// True when an enqueued operation panicked (sticky error).
    pub poisoned: bool,
}

pub(crate) struct StreamInner {
    id: u64,
    queue: Mutex<VecDeque<Work>>,
    cv: Condvar,
    /// Number of operations enqueued over the stream's lifetime.
    submitted: AtomicU64,
    /// Number of operations fully executed.
    completed: AtomicU64,
    shutdown: AtomicBool,
    /// Set when an enqueued operation panicked: the stream is poisoned
    /// (CUDA's sticky-error model) and the failure surfaces at the next
    /// synchronize.
    poisoned: AtomicBool,
    /// Modeled timeline: seconds of modeled device time accumulated by the
    /// operations executed on this stream.
    modeled_busy_s: Mutex<f64>,
}

impl StreamInner {
    fn new() -> Arc<Self> {
        Arc::new(StreamInner {
            id: NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            modeled_busy_s: Mutex::new(0.0),
        })
    }

    fn worker(self: &Arc<Self>) {
        loop {
            let work = {
                let mut q = self.queue.lock();
                loop {
                    if let Some(w) = q.pop_front() {
                        break w;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    self.cv.wait(&mut q);
                }
            };
            // A panicking operation (simulated device assert, detected race,
            // out-of-bounds access) must not kill the worker — that would
            // wedge every later synchronize()/Event::wait() forever. Catch,
            // mark the stream poisoned (CUDA's sticky-error model), keep
            // draining; the failure surfaces at the next synchronize.
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(work)).is_err() {
                self.poisoned.store(true, Ordering::Release);
            }
            self.completed.fetch_add(1, Ordering::Release);
            // Wake synchronizers (they wait on the queue condvar too).
            let _q = self.queue.lock();
            self.cv.notify_all();
        }
    }

    /// Wait until every submitted operation has completed. Panics if any
    /// operation panicked (the stream is poisoned — sticky-error model).
    pub(crate) fn drain(self: &Arc<Self>) {
        let mut q = self.queue.lock();
        while self.completed.load(Ordering::Acquire) < self.submitted.load(Ordering::Acquire) {
            self.cv.wait(&mut q);
        }
        drop(q);
        assert!(
            !self.poisoned.load(Ordering::Acquire),
            "stream poisoned: an enqueued operation panicked (see earlier output)"
        );
    }

    /// Utilization snapshot (see [`StreamStats`]).
    pub(crate) fn stats(&self) -> StreamStats {
        // Load `completed` before `submitted` so the pending difference
        // cannot underflow (same reasoning as `Stream::pending`).
        let completed = self.completed.load(Ordering::Acquire);
        let submitted = self.submitted.load(Ordering::Acquire);
        StreamStats {
            id: self.id,
            submitted,
            completed,
            pending: submitted.saturating_sub(completed),
            modeled_busy_s: *self.modeled_busy_s.lock(),
            poisoned: self.poisoned.load(Ordering::Acquire),
        }
    }
}

/// Shutdown guard: stops the worker thread when the last user-held handle
/// to the stream is dropped.
struct StreamOwner {
    inner: Arc<StreamInner>,
}

impl Drop for StreamOwner {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        let _q = self.inner.queue.lock();
        self.inner.cv.notify_all();
    }
}

/// An in-order asynchronous work queue on a device (a CUDA/HIP stream).
///
/// Cloning yields another handle to the *same* queue (device-pointer
/// semantics, like `cudaStream_t`); the worker shuts down when the last
/// handle is dropped.
#[derive(Clone)]
pub struct Stream {
    inner: Arc<StreamInner>,
    _owner: Arc<StreamOwner>,
    device: Device,
}

impl Stream {
    /// Create a stream on `device`; spawns the stream's worker thread.
    pub fn new(device: &Device) -> Self {
        let inner = StreamInner::new();
        device.inner.streams.lock().push(Arc::downgrade(&inner));
        {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("sim-stream".into())
                .spawn(move || inner.worker())
                .expect("failed to spawn stream worker");
        }
        let owner = Arc::new(StreamOwner { inner: Arc::clone(&inner) });
        Stream { inner, _owner: owner, device: device.clone() }
    }

    /// The device this stream belongs to.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Enqueue an arbitrary operation; it runs after everything already in
    /// the queue. Returns immediately.
    pub fn enqueue(&self, op: impl FnOnce() + Send + 'static) {
        self.inner.submitted.fetch_add(1, Ordering::AcqRel);
        let mut q = self.inner.queue.lock();
        q.push_back(Box::new(op));
        self.inner.cv.notify_all();
    }

    /// Add modeled device-busy seconds to the stream's timeline (called by
    /// the language runtimes after they compute a kernel's modeled time).
    pub fn add_modeled_time(&self, seconds: f64) {
        *self.inner.modeled_busy_s.lock() += seconds;
    }

    /// Add modeled device-busy seconds *and* record a named span at the
    /// timeline position the work occupied, if a profiler span log is
    /// installed ([`crate::span::SpanLog::install`]). `flow_in` ties the
    /// span to the host-side submission that enqueued it.
    pub fn add_modeled_span(
        &self,
        name: &str,
        cat: crate::span::SpanCategory,
        seconds: f64,
        bytes: u64,
        flow_in: Option<u64>,
    ) {
        let start_s = {
            let mut busy = self.inner.modeled_busy_s.lock();
            let start = *busy;
            *busy += seconds;
            start
        };
        if let Some(log) = crate::span::active() {
            log.stream_span(self.inner.id, name, cat, start_s, seconds, bytes, flow_in);
        }
    }

    /// Total modeled device-busy seconds accumulated on this stream.
    pub fn modeled_busy_seconds(&self) -> f64 {
        *self.inner.modeled_busy_s.lock()
    }

    /// Process-unique stream id (names this stream's profiler track).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Utilization/overlap counters as a plain snapshot.
    pub fn stats(&self) -> StreamStats {
        self.inner.stats()
    }

    /// Block until the queue is empty, then roll the stream-synchronize
    /// fault site (`cudaStreamSynchronize` with an error code). Panics if
    /// an enqueued operation panicked: stream poisoning stands for a
    /// simulated-*program* bug (device assert, detected race) and stays
    /// deliberately fatal — it is not an injectable fault.
    pub fn try_synchronize(&self) -> crate::error::SimResult<()> {
        self.inner.drain();
        match self.device.roll_stream_fault(self.inner.id) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Block until the queue is empty (`cudaStreamSynchronize`). Injected
    /// faults are retried under the device's policy; if retries are
    /// exhausted the sync degrades — the queue *is* drained by then, only
    /// the modeled completion handshake failed — and the error stays
    /// recorded as sticky device state.
    pub fn synchronize(&self) {
        let policy = self.device.retry_policy();
        let result = crate::fault::run_with_retry(&self.device, &policy, "stream sync", || {
            self.try_synchronize()
        });
        if result.is_err() {
            if let Some(f) = self.device.faults() {
                f.note_degraded("stream sync");
            }
        }
    }

    /// Record an event capturing the work submitted so far
    /// (`cudaEventRecord`). When the event fires it also captures the
    /// stream's modeled device timeline, so two events measure modeled
    /// elapsed time like `cudaEventElapsedTime` (the timer most HeCBench
    /// kernels report with).
    pub fn record_event(&self) -> Event {
        let event = Event::new();
        let flag = Arc::clone(&event.flag);
        let stamp = Arc::clone(&event.modeled_at);
        let inner = Arc::clone(&self.inner);
        self.enqueue(move || {
            *stamp.lock() = Some(*inner.modeled_busy_s.lock());
            let (lock, cv) = &*flag;
            *lock.lock() = true;
            cv.notify_all();
        });
        event
    }

    /// Number of operations still pending.
    pub fn pending(&self) -> u64 {
        // Load `completed` first: it only grows after its matching
        // `submitted` increment, so this snapshot order (plus the
        // saturating subtraction) cannot underflow when another thread
        // enqueues-and-completes between the two loads.
        let completed = self.inner.completed.load(Ordering::Acquire);
        let submitted = self.inner.submitted.load(Ordering::Acquire);
        submitted.saturating_sub(completed)
    }

    /// True when an enqueued operation panicked (sticky error).
    pub fn is_poisoned(&self) -> bool {
        self.inner.poisoned.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Stream(dev={}, pending={})", self.device.id(), self.pending())
    }
}

/// A completion marker within a stream (`cudaEvent_t`).
#[derive(Clone)]
pub struct Event {
    flag: Arc<(Mutex<bool>, Condvar)>,
    /// Stream's modeled device-busy seconds at the moment the event fired.
    modeled_at: Arc<Mutex<Option<f64>>>,
}

impl Event {
    fn new() -> Self {
        Event {
            flag: Arc::new((Mutex::new(false), Condvar::new())),
            modeled_at: Arc::new(Mutex::new(None)),
        }
    }

    /// True once all work preceding the event has completed.
    pub fn query(&self) -> bool {
        *self.flag.0.lock()
    }

    /// Block until the event has completed (`cudaEventSynchronize`).
    pub fn wait(&self) {
        let (lock, cv) = &*self.flag;
        let mut done = lock.lock();
        while !*done {
            cv.wait(&mut done);
        }
    }

    /// The stream's modeled timeline position when this event fired;
    /// `None` until the event completes.
    pub fn modeled_timestamp(&self) -> Option<f64> {
        *self.modeled_at.lock()
    }

    /// `cudaEventElapsedTime`: modeled seconds of device work between two
    /// events recorded on the same stream. Panics if either event has not
    /// fired (call [`Event::wait`] first).
    pub fn modeled_elapsed_since(&self, start: &Event) -> f64 {
        let end = self.modeled_timestamp().expect("end event has not fired");
        let begin = start.modeled_timestamp().expect("start event has not fired");
        end - begin
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Event(done={})", self.query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;
    use std::sync::atomic::AtomicUsize;

    fn dev() -> Device {
        Device::new(DeviceProfile::test_small())
    }

    #[test]
    fn operations_execute_in_order() {
        let d = dev();
        let s = Stream::new(&d);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..50 {
            let log = Arc::clone(&log);
            s.enqueue(move || log.lock().push(i));
        }
        s.synchronize();
        assert_eq!(*log.lock(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn enqueue_returns_before_completion() {
        let d = dev();
        let s = Stream::new(&d);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let ran = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&ran);
            s.enqueue(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                ran.store(true, Ordering::SeqCst);
            });
        }
        // The op is blocked on the gate, so it cannot have run yet.
        assert!(!ran.load(Ordering::SeqCst));
        assert_eq!(s.pending(), 1);
        *gate.0.lock() = true;
        gate.1.notify_all();
        s.synchronize();
        assert!(ran.load(Ordering::SeqCst));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn events_mark_points_in_the_queue() {
        let d = dev();
        let s = Stream::new(&d);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            s.enqueue(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let ev = s.record_event();
        ev.wait();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert!(ev.query());
    }

    #[test]
    fn independent_streams_can_overlap() {
        let d = dev();
        let s1 = Stream::new(&d);
        let s2 = Stream::new(&d);
        // s1's op waits for s2's op to run first — only possible if the two
        // streams execute concurrently.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            s1.enqueue(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
            });
        }
        {
            let gate = Arc::clone(&gate);
            s2.enqueue(move || {
                *gate.0.lock() = true;
                gate.1.notify_all();
            });
        }
        s1.synchronize();
        s2.synchronize();
    }

    #[test]
    fn device_synchronize_drains_all_streams() {
        let d = dev();
        let s1 = Stream::new(&d);
        let s2 = Stream::new(&d);
        let counter = Arc::new(AtomicUsize::new(0));
        for s in [&s1, &s2] {
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                s.enqueue(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        d.synchronize();
        assert_eq!(counter.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn stats_snapshot_tracks_utilization() {
        let d = dev();
        let s = Stream::new(&d);
        let s2 = Stream::new(&d);
        assert_ne!(s.id(), s2.id(), "stream ids are process-unique");
        for _ in 0..4 {
            let s3 = s.clone();
            s.enqueue(move || s3.add_modeled_time(1e-3));
        }
        s.synchronize();
        let st = s.stats();
        assert_eq!(st.id, s.id());
        assert_eq!(st.submitted, 4);
        assert_eq!(st.completed, 4);
        assert_eq!(st.pending, 0);
        assert!(!st.poisoned);
        assert!((st.modeled_busy_s - 4e-3).abs() < 1e-12);
        // Untouched stream: all zero.
        let st2 = s2.stats();
        assert_eq!((st2.submitted, st2.completed, st2.pending), (0, 0, 0));
        assert_eq!(st2.modeled_busy_s, 0.0);
    }

    #[test]
    fn add_modeled_span_records_to_installed_log() {
        use crate::span::{SpanCategory, SpanLog, Track};
        let d = dev();
        let s = Stream::new(&d);
        let log = SpanLog::new();
        let prev = SpanLog::install(Arc::clone(&log));
        s.add_modeled_span("k1", SpanCategory::Kernel, 2e-3, 0, None);
        s.add_modeled_span("cpy", SpanCategory::MemcpyH2D, 1e-3, 4096, Some(9));
        SpanLog::uninstall();
        if let Some(p) = prev {
            SpanLog::install(p);
        }
        assert!((s.modeled_busy_seconds() - 3e-3).abs() < 1e-12);
        let spans: Vec<_> =
            log.spans().into_iter().filter(|sp| sp.track == Track::Stream(s.id())).collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start_s, 0.0);
        assert!((spans[1].start_s - 2e-3).abs() < 1e-12);
        assert_eq!(spans[1].bytes, 4096);
        assert_eq!(spans[1].flow_in, Some(9));
    }

    #[test]
    fn modeled_time_accumulates() {
        let d = dev();
        let s = Stream::new(&d);
        s.add_modeled_time(1.5e-3);
        s.add_modeled_time(0.5e-3);
        assert!((s.modeled_busy_seconds() - 2.0e-3).abs() < 1e-12);
    }

    #[test]
    fn event_pairs_measure_modeled_elapsed_time() {
        let d = dev();
        let s = Stream::new(&d);
        let start = s.record_event();
        {
            let s2 = s.clone();
            s.enqueue(move || s2.add_modeled_time(3.5e-3));
        }
        let end = s.record_event();
        end.wait();
        assert!((end.modeled_elapsed_since(&start) - 3.5e-3).abs() < 1e-12);
        assert_eq!(start.modeled_timestamp(), Some(0.0));
    }

    #[test]
    fn panicking_op_poisons_instead_of_wedging() {
        let d = dev();
        let s = Stream::new(&d);
        s.enqueue(|| panic!("simulated device assert"));
        let ran_after = Arc::new(AtomicBool::new(false));
        {
            let r = Arc::clone(&ran_after);
            s.enqueue(move || r.store(true, Ordering::SeqCst));
        }
        // synchronize must NOT hang; it must surface the poisoned state.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.synchronize()));
        assert!(result.is_err(), "poisoned stream must fail synchronize");
        assert!(s.is_poisoned());
        // The worker survived and drained the op behind the panic.
        assert!(ran_after.load(Ordering::SeqCst));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn unfired_event_has_no_timestamp() {
        let d = dev();
        let s = Stream::new(&d);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            s.enqueue(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
            });
        }
        let ev = s.record_event();
        assert_eq!(ev.modeled_timestamp(), None);
        *gate.0.lock() = true;
        gate.1.notify_all();
        ev.wait();
        assert!(ev.modeled_timestamp().is_some());
    }
}
