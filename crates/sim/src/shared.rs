//! Per-block shared memory (`__shared__` / `groupprivate(team:)`).
//!
//! Shared arrays are declared on the [`crate::dim::LaunchConfig`] before
//! launch (the static layout a compiler would produce) and materialized once
//! per thread block. Every element is backed by a 64-bit atomic transport
//! word so that lanes of a block may access the array concurrently with
//! defined behaviour, exactly like device global memory ([`crate::mem`]).
//!
//! Type safety: each slot records the element type name at declaration and
//! validates it on access, turning the C "reinterpret the smem pointer" bug
//! class into a loud simulator panic.

use crate::dim::SharedSlotDecl;
use crate::mem::DeviceScalar;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared-memory arena of a single thread block.
pub struct BlockShared {
    slots: Vec<SharedSlot>,
}

/// One shared array instance (a `__shared__ T name[len]`).
pub struct SharedSlot {
    words: Box<[AtomicU64]>,
    /// Race-detector fold when racecheck is on: per (cell, barrier epoch),
    /// an order-independent summary of the accesses observed, scanned once
    /// at block end. A commutative fold — rather than a last-access shadow
    /// cell — makes the detector's output independent of the real-time
    /// order in which concurrently executing lanes touch the cell.
    race: Option<Mutex<HashMap<(usize, u64), SharedCellFold>>>,
    /// Initcheck bitmap (one bit per word) when initcheck is on: shared
    /// memory is undefined at block start on real hardware, so reads before
    /// any write in the block are flagged.
    init: Option<Box<[AtomicU64]>>,
    decl: SharedSlotDecl,
}

/// One lane's access to a shared cell, as remembered by the race fold.
#[derive(Debug, Clone, Copy)]
struct LaneAccess {
    lane: usize,
    write: bool,
}

impl LaneAccess {
    /// Canonical ordering key: lower lanes first; on the same lane, a
    /// write outranks a read so the representative's kind is deterministic.
    fn rank(self) -> (usize, bool) {
        (self.lane, !self.write)
    }
}

/// Order-independent per-(cell, epoch) access summary: the minimum-ranked
/// write, the minimum-ranked access, and the minimum-ranked access from a
/// different lane than that one. Enough to decide "≥ 2 distinct lanes, at
/// least one write" and to name a canonical conflicting pair, while every
/// fold step is commutative.
#[derive(Debug, Default)]
struct SharedCellFold {
    wmin: Option<LaneAccess>,
    amin: Option<LaneAccess>,
    amin2: Option<LaneAccess>,
}

impl SharedCellFold {
    fn offer(&mut self, p: LaneAccess) {
        if p.write && self.wmin.is_none_or(|w| p.rank() < w.rank()) {
            self.wmin = Some(p);
        }
        match self.amin {
            None => self.amin = Some(p),
            Some(a) if p.rank() < a.rank() => {
                self.amin = Some(p);
                // The displaced minimum becomes a runner-up candidate; the
                // old runner-up stays one unless it shares the new
                // minimum's lane.
                let mut runner = self.amin2.filter(|r| r.lane != p.lane);
                if a.lane != p.lane && runner.is_none_or(|r| a.rank() < r.rank()) {
                    runner = Some(a);
                }
                self.amin2 = runner;
            }
            Some(a) => {
                if p.lane != a.lane && self.amin2.is_none_or(|r| p.rank() < r.rank()) {
                    self.amin2 = Some(p);
                }
            }
        }
    }

    /// The canonical conflicting pair, if this summary is a race: at least
    /// one write and at least two distinct lanes.
    fn conflict(&self) -> Option<(LaneAccess, LaneAccess)> {
        let w = self.wmin?;
        let second = self.amin2?;
        let a = self.amin?;
        let other = if a.lane != w.lane { a } else { second };
        Some(if w.rank() <= other.rank() { (w, other) } else { (other, w) })
    }
}

impl BlockShared {
    /// Materialize the declared layout for one block.
    pub fn new(decls: &[SharedSlotDecl]) -> Self {
        Self::with_tools(decls, false, false)
    }

    /// Materialize the layout with any combination of per-cell tooling
    /// state: racecheck shadow cells and/or the initcheck bitmap.
    pub fn with_tools(decls: &[SharedSlotDecl], racecheck: bool, initcheck: bool) -> Self {
        let slots = decls
            .iter()
            .map(|d| SharedSlot {
                words: (0..d.len).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into_boxed_slice(),
                race: racecheck.then(|| Mutex::new(HashMap::new())),
                init: initcheck.then(|| {
                    (0..d.len.div_ceil(64))
                        .map(|_| AtomicU64::new(0))
                        .collect::<Vec<_>>()
                        .into_boxed_slice()
                }),
                decl: *d,
            })
            .collect();
        BlockShared { slots }
    }

    /// Number of declared slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Borrow a typed view of slot `idx`. Panics (simulated compiler/type
    /// error) when the index or the element type is wrong.
    pub fn view<T: DeviceScalar>(&self, idx: usize) -> SharedView<'_, T> {
        let slot = self.slots.get(idx).unwrap_or_else(|| {
            panic!("shared slot {idx} out of range ({} declared)", self.slots.len())
        });
        let expected = std::any::type_name::<T>();
        // Pointer equality first: &'static str from type_name is usually
        // deduplicated, making the hot-path check O(1); fall back to a
        // content compare for correctness across codegen units.
        if !std::ptr::eq(slot.decl.type_name, expected) && slot.decl.type_name != expected {
            panic!(
                "shared slot {idx} declared as {} but accessed as {expected}",
                slot.decl.type_name
            );
        }
        SharedView {
            words: &slot.words,
            race: slot.race.as_ref(),
            init: slot.init.as_deref(),
            slot: idx,
            _marker: std::marker::PhantomData,
        }
    }

    /// Reset all slots to zero (block reuse between executions). Also
    /// resets tooling state: the next block starts with a clean race fold
    /// and an all-uninitialized bitmap.
    pub fn clear(&self) {
        for slot in &self.slots {
            for w in slot.words.iter() {
                w.store(0, Ordering::Relaxed);
            }
            if let Some(race) = &slot.race {
                race.lock().clear();
            }
            if let Some(init) = &slot.init {
                for w in init.iter() {
                    w.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Scan the race folds of every slot and return the detected races in
    /// canonical (slot, cell, epoch) order. Called once per block at block
    /// end (after all lanes retire), so the result is independent of lane
    /// interleaving during the block's execution.
    pub fn collect_races(&self) -> Vec<(usize, SharedRace)> {
        let mut out = Vec::new();
        for (slot_idx, slot) in self.slots.iter().enumerate() {
            let Some(race) = &slot.race else { continue };
            let map = race.lock();
            let mut keys: Vec<(usize, u64)> = map.keys().copied().collect();
            keys.sort_unstable();
            for (cell, epoch) in keys {
                if let Some((prev, this)) = map[&(cell, epoch)].conflict() {
                    out.push((
                        slot_idx,
                        SharedRace {
                            cell,
                            prev_lane: prev.lane,
                            prev_write: prev.write,
                            this_lane: this.lane,
                            this_write: this.write,
                            epoch,
                        },
                    ));
                }
            }
        }
        out
    }
}

/// A typed, bounds-checked view of one shared array, valid for the lifetime
/// of the block execution.
pub struct SharedView<'a, T: DeviceScalar> {
    words: &'a [AtomicU64],
    race: Option<&'a Mutex<HashMap<(usize, u64), SharedCellFold>>>,
    init: Option<&'a [AtomicU64]>,
    slot: usize,
    _marker: std::marker::PhantomData<T>,
}

/// Access kind for the race detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// A shared-memory race detected by the block-end fold scan: the canonical
/// conflicting pair of accesses on one cell within one barrier epoch.
/// [`crate::exec`] records these as diagnostics on the attached sanitizer
/// session when the block completes.
#[derive(Debug, Clone, Copy)]
pub struct SharedRace {
    pub cell: usize,
    pub prev_lane: usize,
    pub prev_write: bool,
    pub this_lane: usize,
    pub this_write: bool,
    pub epoch: u64,
}

impl<'a, T: DeviceScalar> SharedView<'a, T> {
    /// Race-detector hook (the `compute-sanitizer --tool racecheck`
    /// analogue): called by the thread context on counted accesses when the
    /// launch enabled race checking. `epoch` is the caller's barrier count;
    /// two threads touching the same cell in the same barrier epoch with at
    /// least one write is a shared-memory data race — the bug class that
    /// hand-ported SIMT tiling code introduces.
    ///
    /// The access is folded into an order-independent per-(cell, epoch)
    /// summary; conflicts are materialized at block end by
    /// [`BlockShared::collect_races`], so detection and reporting are
    /// deterministic regardless of how the OS interleaves lanes.
    #[inline]
    pub fn racecheck_access(&self, i: usize, lane: usize, epoch: u64, kind: AccessKind) {
        let Some(race) = self.race else { return };
        race.lock()
            .entry((i, epoch))
            .or_default()
            .offer(LaneAccess { lane, write: kind == AccessKind::Write });
    }

    /// Index of the declared slot this view borrows (for diagnostics).
    #[inline]
    pub fn slot_index(&self) -> usize {
        self.slot
    }

    /// True when initcheck tracking is on and cell `i` has never been
    /// written in this block.
    #[inline]
    pub fn is_unwritten(&self, i: usize) -> bool {
        match self.init {
            Some(bits) => bits[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) == 0,
            None => false,
        }
    }

    #[inline]
    fn mark_init(&self, i: usize) {
        if let Some(bits) = self.init {
            bits[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
        }
    }
    /// Element count.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Load element `i` (uncounted; `ThreadCtx` wraps this with counting).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        T::from_word(self.words[i].load(Ordering::Relaxed))
    }

    /// Store element `i` (uncounted; `ThreadCtx` wraps this with counting).
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        self.mark_init(i);
        self.words[i].store(v.to_word(), Ordering::Relaxed)
    }

    /// Atomic add on a shared element; returns the previous value.
    ///
    /// Implemented as a CAS loop over the transport word, matching how GPUs
    /// implement shared-memory atomics for types without native support.
    #[inline]
    pub fn atomic_add(&self, i: usize, v: T) -> T
    where
        T: std::ops::Add<Output = T>,
    {
        self.mark_init(i);
        let cell = &self.words[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let old = T::from_word(cur);
            let new = (old + v).to_word();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return old,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A shared arena wrapped for handoff to block lanes.
pub type SharedArc = Arc<BlockShared>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::LaunchConfig;

    fn decls() -> Vec<SharedSlotDecl> {
        let mut cfg = LaunchConfig::new(1u32, 32u32);
        cfg.shared_array::<f32>(8);
        cfg.shared_array::<u32>(4);
        cfg.shared_slots
    }

    #[test]
    fn typed_views_roundtrip() {
        let bs = BlockShared::new(&decls());
        let f = bs.view::<f32>(0);
        f.set(3, 2.5);
        assert_eq!(f.get(3), 2.5);
        assert_eq!(f.get(0), 0.0);
        let u = bs.view::<u32>(1);
        u.set(0, 42);
        assert_eq!(u.get(0), 42);
        assert_eq!(f.len(), 8);
        assert_eq!(u.len(), 4);
    }

    #[test]
    #[should_panic(expected = "declared as f32 but accessed as u32")]
    fn type_confusion_panics() {
        let bs = BlockShared::new(&decls());
        let _ = bs.view::<u32>(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_out_of_range_panics() {
        let bs = BlockShared::new(&decls());
        let _ = bs.view::<f32>(2);
    }

    #[test]
    fn clear_zeroes_all_slots() {
        let bs = BlockShared::new(&decls());
        bs.view::<f32>(0).set(0, 1.0);
        bs.view::<u32>(1).set(1, 9);
        bs.clear();
        assert_eq!(bs.view::<f32>(0).get(0), 0.0);
        assert_eq!(bs.view::<u32>(1).get(1), 0);
    }

    #[test]
    fn race_fold_is_order_independent() {
        // Offer the same access set in two different orders; the conflict
        // representative must be identical.
        let accesses = [
            LaneAccess { lane: 5, write: false },
            LaneAccess { lane: 2, write: true },
            LaneAccess { lane: 7, write: true },
            LaneAccess { lane: 2, write: false },
        ];
        let mut fwd = SharedCellFold::default();
        let mut rev = SharedCellFold::default();
        for a in accesses {
            fwd.offer(a);
        }
        for a in accesses.iter().rev() {
            rev.offer(*a);
        }
        let (fp, ft) = fwd.conflict().expect("write + two lanes is a race");
        let (rp, rt) = rev.conflict().expect("write + two lanes is a race");
        assert_eq!((fp.lane, fp.write, ft.lane, ft.write), (rp.lane, rp.write, rt.lane, rt.write));
        // Lane 2's write is the minimum-ranked access; lane 5's read is the
        // lowest-ranked access on another lane.
        assert_eq!((fp.lane, fp.write), (2, true));
        assert_eq!((ft.lane, ft.write), (5, false));
    }

    #[test]
    fn race_fold_requires_write_and_two_lanes() {
        let mut reads_only = SharedCellFold::default();
        reads_only.offer(LaneAccess { lane: 0, write: false });
        reads_only.offer(LaneAccess { lane: 1, write: false });
        assert!(reads_only.conflict().is_none());

        let mut one_lane = SharedCellFold::default();
        one_lane.offer(LaneAccess { lane: 3, write: true });
        one_lane.offer(LaneAccess { lane: 3, write: false });
        assert!(one_lane.conflict().is_none());
    }

    #[test]
    fn collect_races_is_canonically_ordered() {
        let bs = BlockShared::with_tools(&decls(), true, false);
        let f = bs.view::<f32>(0);
        // Touch cells out of order and across epochs.
        f.racecheck_access(4, 1, 0, AccessKind::Write);
        f.racecheck_access(4, 0, 0, AccessKind::Read);
        f.racecheck_access(2, 6, 3, AccessKind::Write);
        f.racecheck_access(2, 2, 3, AccessKind::Write);
        f.racecheck_access(2, 9, 1, AccessKind::Read);
        f.racecheck_access(2, 8, 1, AccessKind::Write);
        // Same cell, different epochs: no conflict.
        f.racecheck_access(7, 0, 0, AccessKind::Write);
        f.racecheck_access(7, 1, 1, AccessKind::Write);
        let races = bs.collect_races();
        let keys: Vec<(usize, usize, u64)> =
            races.iter().map(|(slot, r)| (*slot, r.cell, r.epoch)).collect();
        assert_eq!(keys, vec![(0, 2, 1), (0, 2, 3), (0, 4, 0)]);
        bs.clear();
        assert!(bs.collect_races().is_empty());
    }

    #[test]
    fn shared_atomic_add() {
        let bs = BlockShared::new(&decls());
        let f = bs.view::<f32>(0);
        assert_eq!(f.atomic_add(0, 1.5), 0.0);
        assert_eq!(f.atomic_add(0, 2.0), 1.5);
        assert_eq!(f.get(0), 3.5);
    }
}
