//! Per-block shared memory (`__shared__` / `groupprivate(team:)`).
//!
//! Shared arrays are declared on the [`crate::dim::LaunchConfig`] before
//! launch (the static layout a compiler would produce) and materialized once
//! per thread block. Every element is backed by a 64-bit atomic transport
//! word so that lanes of a block may access the array concurrently with
//! defined behaviour, exactly like device global memory ([`crate::mem`]).
//!
//! Type safety: each slot records the element type name at declaration and
//! validates it on access, turning the C "reinterpret the smem pointer" bug
//! class into a loud simulator panic.

use crate::dim::SharedSlotDecl;
use crate::mem::DeviceScalar;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared-memory arena of a single thread block.
pub struct BlockShared {
    slots: Vec<SharedSlot>,
}

/// One shared array instance (a `__shared__ T name[len]`).
pub struct SharedSlot {
    words: Box<[AtomicU64]>,
    /// Race-detector shadow cells (one per word) when racecheck is on.
    shadow: Option<Box<[AtomicU64]>>,
    /// Initcheck bitmap (one bit per word) when initcheck is on: shared
    /// memory is undefined at block start on real hardware, so reads before
    /// any write in the block are flagged.
    init: Option<Box<[AtomicU64]>>,
    decl: SharedSlotDecl,
}

impl BlockShared {
    /// Materialize the declared layout for one block.
    pub fn new(decls: &[SharedSlotDecl]) -> Self {
        Self::with_tools(decls, false, false)
    }

    /// Materialize the layout with any combination of per-cell tooling
    /// state: racecheck shadow cells and/or the initcheck bitmap.
    pub fn with_tools(decls: &[SharedSlotDecl], racecheck: bool, initcheck: bool) -> Self {
        let slots = decls
            .iter()
            .map(|d| SharedSlot {
                words: (0..d.len).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into_boxed_slice(),
                shadow: racecheck.then(|| {
                    (0..d.len).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into_boxed_slice()
                }),
                init: initcheck.then(|| {
                    (0..d.len.div_ceil(64))
                        .map(|_| AtomicU64::new(0))
                        .collect::<Vec<_>>()
                        .into_boxed_slice()
                }),
                decl: *d,
            })
            .collect();
        BlockShared { slots }
    }

    /// Number of declared slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Borrow a typed view of slot `idx`. Panics (simulated compiler/type
    /// error) when the index or the element type is wrong.
    pub fn view<T: DeviceScalar>(&self, idx: usize) -> SharedView<'_, T> {
        let slot = self.slots.get(idx).unwrap_or_else(|| {
            panic!("shared slot {idx} out of range ({} declared)", self.slots.len())
        });
        let expected = std::any::type_name::<T>();
        // Pointer equality first: &'static str from type_name is usually
        // deduplicated, making the hot-path check O(1); fall back to a
        // content compare for correctness across codegen units.
        if !std::ptr::eq(slot.decl.type_name, expected) && slot.decl.type_name != expected {
            panic!(
                "shared slot {idx} declared as {} but accessed as {expected}",
                slot.decl.type_name
            );
        }
        SharedView {
            words: &slot.words,
            shadow: slot.shadow.as_deref(),
            init: slot.init.as_deref(),
            slot: idx,
            _marker: std::marker::PhantomData,
        }
    }

    /// Reset all slots to zero (block reuse between executions). Also
    /// resets tooling state: the next block starts with a clean shadow and
    /// an all-uninitialized bitmap.
    pub fn clear(&self) {
        for slot in &self.slots {
            for w in slot.words.iter() {
                w.store(0, Ordering::Relaxed);
            }
            for extra in [slot.shadow.as_deref(), slot.init.as_deref()].into_iter().flatten() {
                for w in extra.iter() {
                    w.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

/// A typed, bounds-checked view of one shared array, valid for the lifetime
/// of the block execution.
pub struct SharedView<'a, T: DeviceScalar> {
    words: &'a [AtomicU64],
    shadow: Option<&'a [AtomicU64]>,
    init: Option<&'a [AtomicU64]>,
    slot: usize,
    _marker: std::marker::PhantomData<T>,
}

/// Access kind for the race detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// A shared-memory race observed by the shadow-cell detector: the previous
/// conflicting access on the same cell in the same barrier epoch. The
/// caller ([`crate::thread::ThreadCtx`]) records it as a diagnostic on the
/// attached sanitizer session.
#[derive(Debug, Clone, Copy)]
pub struct SharedRace {
    pub cell: usize,
    pub prev_lane: usize,
    pub prev_write: bool,
    pub this_lane: usize,
    pub this_write: bool,
    pub epoch: u64,
}

impl<'a, T: DeviceScalar> SharedView<'a, T> {
    /// Race-detector hook (the `compute-sanitizer --tool racecheck`
    /// analogue): called by the thread context on counted accesses when the
    /// launch enabled race checking. `epoch` is the caller's barrier count;
    /// two threads touching the same cell in the same barrier epoch with at
    /// least one write is a shared-memory data race — the bug class that
    /// hand-ported SIMT tiling code introduces. Returns the conflict for
    /// the caller to report.
    ///
    /// Best-effort: each shadow cell remembers only the most recent access,
    /// like the hardware tools.
    #[inline]
    #[must_use = "a detected race must be reported by the caller"]
    pub fn racecheck_access(
        &self,
        i: usize,
        lane: usize,
        epoch: u64,
        kind: AccessKind,
    ) -> Option<SharedRace> {
        let shadow = self.shadow?;
        // Pack: epoch (39 bits) | kind (1 bit) | lane+1 (24 bits).
        let kind_bit = u64::from(kind == AccessKind::Write);
        let packed = (epoch << 25) | (kind_bit << 24) | ((lane as u64 + 1) & 0xFF_FFFF);
        let prev = shadow[i].swap(packed, Ordering::Relaxed);
        if prev == 0 {
            return None;
        }
        let prev_epoch = prev >> 25;
        let prev_write = (prev >> 24) & 1 == 1;
        let prev_lane = (prev & 0xFF_FFFF) as usize;
        if prev_epoch == epoch && prev_lane != lane + 1 && (kind == AccessKind::Write || prev_write)
        {
            return Some(SharedRace {
                cell: i,
                prev_lane: prev_lane - 1,
                prev_write,
                this_lane: lane,
                this_write: kind == AccessKind::Write,
                epoch,
            });
        }
        None
    }

    /// Index of the declared slot this view borrows (for diagnostics).
    #[inline]
    pub fn slot_index(&self) -> usize {
        self.slot
    }

    /// True when initcheck tracking is on and cell `i` has never been
    /// written in this block.
    #[inline]
    pub fn is_unwritten(&self, i: usize) -> bool {
        match self.init {
            Some(bits) => bits[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) == 0,
            None => false,
        }
    }

    #[inline]
    fn mark_init(&self, i: usize) {
        if let Some(bits) = self.init {
            bits[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
        }
    }
    /// Element count.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Load element `i` (uncounted; `ThreadCtx` wraps this with counting).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        T::from_word(self.words[i].load(Ordering::Relaxed))
    }

    /// Store element `i` (uncounted; `ThreadCtx` wraps this with counting).
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        self.mark_init(i);
        self.words[i].store(v.to_word(), Ordering::Relaxed)
    }

    /// Atomic add on a shared element; returns the previous value.
    ///
    /// Implemented as a CAS loop over the transport word, matching how GPUs
    /// implement shared-memory atomics for types without native support.
    #[inline]
    pub fn atomic_add(&self, i: usize, v: T) -> T
    where
        T: std::ops::Add<Output = T>,
    {
        self.mark_init(i);
        let cell = &self.words[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let old = T::from_word(cur);
            let new = (old + v).to_word();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return old,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A shared arena wrapped for handoff to block lanes.
pub type SharedArc = Arc<BlockShared>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::LaunchConfig;

    fn decls() -> Vec<SharedSlotDecl> {
        let mut cfg = LaunchConfig::new(1u32, 32u32);
        cfg.shared_array::<f32>(8);
        cfg.shared_array::<u32>(4);
        cfg.shared_slots
    }

    #[test]
    fn typed_views_roundtrip() {
        let bs = BlockShared::new(&decls());
        let f = bs.view::<f32>(0);
        f.set(3, 2.5);
        assert_eq!(f.get(3), 2.5);
        assert_eq!(f.get(0), 0.0);
        let u = bs.view::<u32>(1);
        u.set(0, 42);
        assert_eq!(u.get(0), 42);
        assert_eq!(f.len(), 8);
        assert_eq!(u.len(), 4);
    }

    #[test]
    #[should_panic(expected = "declared as f32 but accessed as u32")]
    fn type_confusion_panics() {
        let bs = BlockShared::new(&decls());
        let _ = bs.view::<u32>(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_out_of_range_panics() {
        let bs = BlockShared::new(&decls());
        let _ = bs.view::<f32>(2);
    }

    #[test]
    fn clear_zeroes_all_slots() {
        let bs = BlockShared::new(&decls());
        bs.view::<f32>(0).set(0, 1.0);
        bs.view::<u32>(1).set(1, 9);
        bs.clear();
        assert_eq!(bs.view::<f32>(0).get(0), 0.0);
        assert_eq!(bs.view::<u32>(1).get(1), 0);
    }

    #[test]
    fn shared_atomic_add() {
        let bs = BlockShared::new(&decls());
        let f = bs.view::<f32>(0);
        assert_eq!(f.atomic_add(0, 1.5), 0.0);
        assert_eq!(f.atomic_add(0, 2.0), 1.5);
        assert_eq!(f.get(0), 3.5);
    }
}
