//! `ThreadCtx`: the world as seen by one simulated GPU thread.
//!
//! Every kernel in this reproduction — CUDA-style, HIP-style, traditional
//! OpenMP offloading, or the paper's `ompx` kernel-language style — is a Rust
//! closure receiving a `&mut ThreadCtx`. The context provides:
//!
//! * **identity**: `threadIdx`/`blockIdx`/`blockDim`/`gridDim` equivalents,
//!   warp id and lane id;
//! * **memory**: counted accessors over device global memory ([`DBuf`]) and
//!   per-block shared memory, so the timing model sees the same traffic the
//!   hardware would;
//! * **cost annotations**: `flops`, `int_ops`, `divergent` — explicit because
//!   a closure's arithmetic cannot be introspected;
//! * **synchronization**: `sync_threads` (block barrier), `sync_warp`,
//!   shuffles and ballots.
//!
//! Whether lanes run on a dedicated thread team (barrier-capable) or are
//! serialized lane-by-lane (fast path for barrier-free kernels) is decided
//! by the executor; the kernel code is identical in both cases.

use crate::barrier::RetireBarrier;
use crate::counters::CostCounters;
use crate::dim::Dim3;
use crate::mem::{DBuf, DeviceScalar};
use crate::memtrace::{BarrierEvent, LaunchMemTrace, MemAccessKind, MemEvent, MemSpace, TraceLog};
use crate::san::{AccessSite, DiagLog, GlobalKind, LaunchSan, Party, ToolMask};
use crate::shared::{BlockShared, SharedView};
use crate::warp::WarpGroup;

/// Execution identity and services for one simulated GPU thread.
pub struct ThreadCtx<'a> {
    pub(crate) block: (u32, u32, u32),
    pub(crate) thread: (u32, u32, u32),
    pub(crate) grid_dim: Dim3,
    pub(crate) block_dim: Dim3,
    pub(crate) warp_size: u32,
    /// Cost counters for this thread; folded into the launch-wide stats when
    /// the thread retires.
    pub counters: CostCounters,
    pub(crate) shared: &'a BlockShared,
    pub(crate) block_barrier: Option<&'a RetireBarrier>,
    pub(crate) warp: Option<&'a WarpGroup>,
    pub(crate) collective_count: u64,
    /// Sanitizer session of the enclosing launch, when one is attached.
    pub(crate) san: Option<&'a LaunchSan>,
    /// Memory-access trace of the enclosing launch, when one is attached.
    pub(crate) mem: Option<&'a LaunchMemTrace>,
    /// Lane-local trace buffer, staged for the canonical launch-end merge
    /// when the lane retires (see [`ThreadCtx::stage_logs`]).
    pub(crate) trace_log: TraceLog,
    /// Lane-local sanitizer findings, staged alongside the trace buffer.
    pub(crate) diag_log: DiagLog,
}

impl<'a> ThreadCtx<'a> {
    /// Construct a detached context outside of a launch.
    ///
    /// Used by runtime layers that need to run kernel-style code on a
    /// synthetic identity (e.g. the OpenMP generic-mode master emulation)
    /// and by tests. Detached contexts run on the serial rules: block
    /// barriers and warp collectives are only legal for 1-thread blocks.
    pub fn detached(
        grid_dim: Dim3,
        block_dim: Dim3,
        block: (u32, u32, u32),
        thread: (u32, u32, u32),
        warp_size: u32,
        shared: &'a BlockShared,
    ) -> Self {
        ThreadCtx {
            block,
            thread,
            grid_dim,
            block_dim,
            warp_size,
            counters: CostCounters::default(),
            shared,
            block_barrier: None,
            warp: None,
            collective_count: 0,
            san: None,
            mem: None,
            trace_log: TraceLog::default(),
            diag_log: DiagLog::default(),
        }
    }

    // ---- sanitizer plumbing --------------------------------------------

    #[inline]
    fn site(&self, san: &'a LaunchSan) -> AccessSite<'a> {
        AccessSite {
            kernel: san.kernel(),
            block: self.block,
            thread: self.thread,
            block_rank: self.grid_dim.linear(self.block.0, self.block.1, self.block.2),
        }
    }

    /// Run the memcheck/initcheck global-memory hook and fold the access
    /// into the cross-block race summary. Returns `true` when the access
    /// must be suppressed (OOB / use-after-free under memcheck).
    #[inline]
    fn san_global<T: DeviceScalar>(&mut self, buf: &DBuf<T>, i: usize, kind: GlobalKind) -> bool {
        let Some(san) = self.san else { return false };
        let site = self.site(san);
        let suppress = san.state().global_access(
            site,
            buf.alloc_id(),
            &buf.label(),
            buf.len(),
            buf.is_freed(),
            i,
            kind,
            kind == GlobalKind::Read && buf.is_unwritten(i),
            &mut self.diag_log,
        );
        if !suppress
            && i < buf.len()
            && !buf.is_freed()
            && kind != GlobalKind::Atomic
            && san.state().tool_on(ToolMask::RACECHECK)
        {
            san.fold_global_access(
                buf.alloc_id(),
                &buf.label(),
                i,
                Party {
                    block_rank: site.block_rank,
                    thread_rank: self.thread_rank(),
                    block: self.block,
                    thread: self.thread,
                    write: kind == GlobalKind::Write,
                },
            );
        }
        suppress
    }

    /// Record a `KernelFlags` drift (collective used on the serial path) as
    /// a structured finding when a synccheck session is attached; returns
    /// `true` when the caller should degrade instead of panicking.
    #[cold]
    fn report_flags_drift(&mut self, what: &str, missing: &str) -> bool {
        match self.san {
            Some(san) => {
                let site = self.site(san);
                san.state().flags_drift(site, what, missing, &mut self.diag_log)
            }
            None => false,
        }
    }

    /// Stage this lane's trace and diagnostic buffers for the canonical
    /// launch-end merge. Called by the executor when the lane retires —
    /// including when it was unwound by a panic, so partial evidence
    /// survives a failing kernel.
    pub(crate) fn stage_logs(&mut self) {
        let block_rank = self.block_rank();
        let thread_rank = self.thread_rank();
        if let Some(mem) = self.mem {
            mem.stage_lane(block_rank, thread_rank, &mut self.trace_log);
        }
        if let Some(san) = self.san {
            san.stage_lane(block_rank, thread_rank, &mut self.diag_log);
        }
    }

    // ---- memory-trace plumbing ------------------------------------------

    #[inline]
    fn trace_global<T: DeviceScalar>(&mut self, buf: &DBuf<T>, i: usize, kind: MemAccessKind) {
        if self.mem.is_some() {
            let phase = self.counters.barriers as u32;
            self.trace_log.push_event(MemEvent {
                kernel: String::new(),
                launch: 0,
                block: self.block,
                thread: self.thread,
                space: MemSpace::Global { alloc_id: buf.alloc_id(), label: buf.label() },
                index: i,
                kind,
                phase,
            });
        }
    }

    #[inline]
    fn trace_shared(&mut self, slot: usize, i: usize, kind: MemAccessKind) {
        if self.mem.is_some() {
            let phase = self.counters.barriers as u32;
            self.trace_log.push_event(MemEvent {
                kernel: String::new(),
                launch: 0,
                block: self.block,
                thread: self.thread,
                space: MemSpace::Shared { slot },
                index: i,
                kind,
                phase,
            });
        }
    }

    // ---- identity -------------------------------------------------------

    /// `threadIdx.x`
    #[inline]
    pub fn thread_id_x(&self) -> usize {
        self.thread.0 as usize
    }
    /// `threadIdx.y`
    #[inline]
    pub fn thread_id_y(&self) -> usize {
        self.thread.1 as usize
    }
    /// `threadIdx.z`
    #[inline]
    pub fn thread_id_z(&self) -> usize {
        self.thread.2 as usize
    }
    /// `blockIdx.x`
    #[inline]
    pub fn block_id_x(&self) -> usize {
        self.block.0 as usize
    }
    /// `blockIdx.y`
    #[inline]
    pub fn block_id_y(&self) -> usize {
        self.block.1 as usize
    }
    /// `blockIdx.z`
    #[inline]
    pub fn block_id_z(&self) -> usize {
        self.block.2 as usize
    }
    /// `blockDim.x`
    #[inline]
    pub fn block_dim_x(&self) -> usize {
        self.block_dim.x as usize
    }
    /// `blockDim.y`
    #[inline]
    pub fn block_dim_y(&self) -> usize {
        self.block_dim.y as usize
    }
    /// `blockDim.z`
    #[inline]
    pub fn block_dim_z(&self) -> usize {
        self.block_dim.z as usize
    }
    /// `gridDim.x`
    #[inline]
    pub fn grid_dim_x(&self) -> usize {
        self.grid_dim.x as usize
    }
    /// `gridDim.y`
    #[inline]
    pub fn grid_dim_y(&self) -> usize {
        self.grid_dim.y as usize
    }
    /// `gridDim.z`
    #[inline]
    pub fn grid_dim_z(&self) -> usize {
        self.grid_dim.z as usize
    }

    /// Linear thread index within the block (x fastest).
    #[inline]
    pub fn thread_rank(&self) -> usize {
        self.block_dim.linear(self.thread.0, self.thread.1, self.thread.2)
    }

    /// Linear block index within the grid (x fastest).
    #[inline]
    pub fn block_rank(&self) -> usize {
        self.grid_dim.linear(self.block.0, self.block.1, self.block.2)
    }

    /// The ubiquitous `blockIdx.x * blockDim.x + threadIdx.x`.
    #[inline]
    pub fn global_thread_id_x(&self) -> usize {
        self.block_id_x() * self.block_dim_x() + self.thread_id_x()
    }

    /// `blockIdx.y * blockDim.y + threadIdx.y`.
    #[inline]
    pub fn global_thread_id_y(&self) -> usize {
        self.block_id_y() * self.block_dim_y() + self.thread_id_y()
    }

    /// `blockIdx.z * blockDim.z + threadIdx.z`.
    #[inline]
    pub fn global_thread_id_z(&self) -> usize {
        self.block_id_z() * self.block_dim_z() + self.thread_id_z()
    }

    /// Fully linearized global thread id across the whole grid.
    #[inline]
    pub fn global_rank(&self) -> usize {
        self.block_rank() * self.block_dim.count() + self.thread_rank()
    }

    /// Total threads in the launch.
    #[inline]
    pub fn global_size(&self) -> usize {
        self.grid_dim.count() * self.block_dim.count()
    }

    /// Device warp width (32 on the NVIDIA profile, 64 on the AMD profile).
    #[inline]
    pub fn warp_size(&self) -> usize {
        self.warp_size as usize
    }

    /// Warp index of this thread within its block.
    #[inline]
    pub fn warp_id(&self) -> usize {
        self.thread_rank() / self.warp_size as usize
    }

    /// Lane index of this thread within its warp.
    #[inline]
    pub fn lane_id(&self) -> usize {
        self.thread_rank() % self.warp_size as usize
    }

    // ---- global memory (counted) ---------------------------------------

    /// Counted global-memory load.
    #[inline]
    pub fn read<T: DeviceScalar>(&mut self, buf: &DBuf<T>, i: usize) -> T {
        self.counters.global_load_bytes += std::mem::size_of::<T>() as u64;
        self.trace_global(buf, i, MemAccessKind::Read);
        if self.san_global(buf, i, GlobalKind::Read) {
            return T::default();
        }
        buf.get(i)
    }

    /// Counted global-memory load through a raw byte offset, the pattern of
    /// type-punned device pointers (`(double*)((char*)p + off)`). Memcheck
    /// flags offsets that break `T`'s alignment — a fault on real hardware.
    /// The simulated access reads the element containing the offset.
    #[inline]
    pub fn read_at_bytes<T: DeviceScalar>(&mut self, buf: &DBuf<T>, byte_offset: usize) -> T {
        let align = std::mem::align_of::<T>();
        if !byte_offset.is_multiple_of(align) {
            if let Some(san) = self.san {
                let site = self.site(san);
                san.state().misaligned_access(
                    site,
                    buf.alloc_id(),
                    &buf.label(),
                    byte_offset,
                    align,
                    std::any::type_name::<T>(),
                    &mut self.diag_log,
                );
            }
        }
        self.read(buf, byte_offset / std::mem::size_of::<T>())
    }

    /// Counted global-memory store.
    #[inline]
    pub fn write<T: DeviceScalar>(&mut self, buf: &DBuf<T>, i: usize, v: T) {
        self.counters.global_store_bytes += std::mem::size_of::<T>() as u64;
        self.trace_global(buf, i, MemAccessKind::Write);
        if self.san_global(buf, i, GlobalKind::Write) {
            return;
        }
        buf.set(i, v)
    }

    /// Warp-uniform load: every lane of the warp reads the *same* address
    /// (a broadcast — e.g. all threads scanning the same point list). The
    /// hardware serves one transaction per warp, so the timing model
    /// divides this counter by the warp width. Charging every lane into a
    /// dedicated counter (rather than only lane 0) keeps the accounting
    /// correct even when some lanes skip the load or exited early.
    #[inline]
    pub fn read_uniform<T: DeviceScalar>(&mut self, buf: &DBuf<T>, i: usize) -> T {
        self.counters.uniform_load_bytes += std::mem::size_of::<T>() as u64;
        self.trace_global(buf, i, MemAccessKind::Read);
        if self.san_global(buf, i, GlobalKind::Read) {
            return T::default();
        }
        buf.get(i)
    }

    /// Counted global atomic add; returns the previous value.
    #[inline]
    pub fn atomic_add<T: DeviceScalar>(&mut self, buf: &DBuf<T>, i: usize, v: T) -> T {
        self.counters.atomic_ops += 1;
        self.trace_global(buf, i, MemAccessKind::Atomic);
        if self.san_global(buf, i, GlobalKind::Atomic) {
            return T::default();
        }
        buf.atomic_add(i, v)
    }

    /// Counted global atomic min; returns the previous value.
    #[inline]
    pub fn atomic_min<T: DeviceScalar>(&mut self, buf: &DBuf<T>, i: usize, v: T) -> T {
        self.counters.atomic_ops += 1;
        self.trace_global(buf, i, MemAccessKind::Atomic);
        if self.san_global(buf, i, GlobalKind::Atomic) {
            return T::default();
        }
        buf.atomic_min(i, v)
    }

    /// Counted global atomic max; returns the previous value.
    #[inline]
    pub fn atomic_max<T: DeviceScalar>(&mut self, buf: &DBuf<T>, i: usize, v: T) -> T {
        self.counters.atomic_ops += 1;
        self.trace_global(buf, i, MemAccessKind::Atomic);
        if self.san_global(buf, i, GlobalKind::Atomic) {
            return T::default();
        }
        buf.atomic_max(i, v)
    }

    /// Counted global compare-exchange.
    #[inline]
    pub fn atomic_cas<T: DeviceScalar>(
        &mut self,
        buf: &DBuf<T>,
        i: usize,
        current: T,
        new: T,
    ) -> Result<T, T> {
        self.counters.atomic_ops += 1;
        self.trace_global(buf, i, MemAccessKind::Atomic);
        if self.san_global(buf, i, GlobalKind::Atomic) {
            return Err(T::default());
        }
        buf.compare_exchange(i, current, new)
    }

    // ---- shared memory (counted) ----------------------------------------

    /// Obtain the typed view of shared slot `slot` declared on the launch
    /// config. The view's lifetime is the block execution.
    #[inline]
    pub fn shared<T: DeviceScalar>(&self, slot: usize) -> SharedView<'a, T> {
        self.shared.view::<T>(slot)
    }

    /// Counted shared-memory load.
    #[inline]
    pub fn sread<T: DeviceScalar>(&mut self, view: &SharedView<'a, T>, i: usize) -> T {
        self.counters.shared_accesses += 1;
        self.trace_shared(view.slot_index(), i, MemAccessKind::Read);
        view.racecheck_access(
            i,
            self.thread_rank(),
            self.counters.barriers,
            crate::shared::AccessKind::Read,
        );
        if view.is_unwritten(i) {
            if let Some(san) = self.san {
                let site = self.site(san);
                san.state().uninit_shared_read(site, view.slot_index(), i, &mut self.diag_log);
            }
        }
        view.get(i)
    }

    /// Counted shared-memory store.
    #[inline]
    pub fn swrite<T: DeviceScalar>(&mut self, view: &SharedView<'a, T>, i: usize, v: T) {
        self.counters.shared_accesses += 1;
        self.trace_shared(view.slot_index(), i, MemAccessKind::Write);
        view.racecheck_access(
            i,
            self.thread_rank(),
            self.counters.barriers,
            crate::shared::AccessKind::Write,
        );
        view.set(i, v)
    }

    /// Counted shared-memory atomic add.
    #[inline]
    pub fn satomic_add<T: DeviceScalar + std::ops::Add<Output = T>>(
        &mut self,
        view: &SharedView<'a, T>,
        i: usize,
        v: T,
    ) -> T {
        self.counters.shared_accesses += 1;
        self.counters.atomic_ops += 1;
        self.trace_shared(view.slot_index(), i, MemAccessKind::Atomic);
        view.atomic_add(i, v)
    }

    // ---- cost annotations -------------------------------------------------

    /// Charge `n` floating-point operations to this thread.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.counters.flops += n;
    }

    /// Charge `n` integer/logic operations to this thread.
    #[inline]
    pub fn int_ops(&mut self, n: u64) {
        self.counters.int_ops += n;
    }

    /// Record a warp-divergent branch taken by this thread.
    #[inline]
    pub fn divergent(&mut self) {
        self.counters.divergent_branches += 1;
    }

    /// Charge `n` operations executed in a serialized (master-only) runtime
    /// section. Used by the OpenMP generic-mode device runtime model.
    #[inline]
    pub fn serial_ops(&mut self, n: u64) {
        self.counters.serial_ops += n;
    }

    // ---- synchronization --------------------------------------------------

    /// Block-wide barrier: `__syncthreads()` / `ompx_sync_thread_block()`.
    ///
    /// Panics if the kernel was launched without barrier support (its
    /// [`crate::exec::KernelFlags`] must set `uses_block_sync`), except for
    /// single-thread blocks where the barrier is trivially a no-op.
    pub fn sync_threads(&mut self) {
        if self.mem.is_some() {
            self.trace_log.push_barrier(BarrierEvent {
                kernel: String::new(),
                launch: 0,
                block: self.block,
                thread: self.thread,
                ordinal: self.counters.barriers as u32,
            });
        }
        self.counters.barriers += 1;
        match self.block_barrier {
            Some(b) => {
                b.wait();
            }
            None => {
                if self.block_dim.count() > 1
                    && !self.report_flags_drift("sync_threads", "uses_block_sync")
                {
                    panic!(
                        "sync_threads in a multi-thread block requires \
                         KernelFlags::uses_block_sync (kernel launched on the serial path)"
                    );
                }
                // Degraded under synccheck: the barrier is a no-op.
            }
        }
    }

    /// Warp-wide barrier: `__syncwarp()` / `ompx_sync_warp()`.
    pub fn sync_warp(&mut self) {
        self.counters.warp_ops += 1;
        match self.warp {
            Some(w) => w.sync(),
            None => {
                if self.block_dim.count() > 1
                    && !self.report_flags_drift("sync_warp", "uses_warp_ops")
                {
                    panic!(
                        "sync_warp requires KernelFlags::uses_warp_ops \
                         (kernel launched on the serial path)"
                    );
                }
                // Degraded under synccheck: the warp barrier is a no-op.
            }
        }
    }

    /// True when this thread is alone in its block: warp collectives
    /// degenerate to self-operations (a warp of one lane), so the serial
    /// execution path handles them without a warp group.
    #[inline]
    fn solo(&self) -> bool {
        self.block_dim.count() == 1
    }

    fn warp_group(&self) -> &'a WarpGroup {
        self.warp.expect(
            "warp primitives require KernelFlags::uses_warp_ops \
             (kernel launched on the serial path)",
        )
    }

    /// `__shfl_sync`: receive the value contributed by `src_lane`.
    pub fn shfl<T: DeviceScalar>(&mut self, val: T, src_lane: usize) -> T {
        self.counters.warp_ops += 1;
        self.collective_count += 1;
        if self.warp.is_none() && (self.solo() || self.report_flags_drift("shfl", "uses_warp_ops"))
        {
            return val; // one-lane warp (or degraded): every source is yourself
        }
        let lane = self.lane_id() as u32;
        self.warp_group().shfl(lane, val, src_lane as u32)
    }

    /// `__shfl_sync` with an explicit member mask, the form hardware exposes
    /// (`ompx_shfl_sync(mask, ...)`). Synccheck flags masks that omit the
    /// calling lane or name a source lane outside the mask / the warp —
    /// undefined behaviour on real hardware. Functionally the shuffle then
    /// proceeds as [`ThreadCtx::shfl`].
    pub fn shfl_masked<T: DeviceScalar>(&mut self, mask: u64, val: T, src_lane: usize) -> T {
        if let Some(san) = self.san {
            let lane = self.lane_id();
            let lanes = match self.warp {
                Some(w) => w.lanes() as usize,
                None => 1,
            };
            let lane_in = lane < 64 && mask & (1u64 << lane) != 0;
            let src_in = src_lane < 64 && mask & (1u64 << src_lane) != 0 && src_lane < lanes;
            if !lane_in || !src_in {
                let site = self.site(san);
                san.state().invalid_shfl_mask(site, mask, lane, src_lane, &mut self.diag_log);
            }
        }
        self.shfl(val, src_lane)
    }

    /// `__shfl_down_sync`: receive the value from `lane + delta`. Lanes past
    /// the end of the warp receive their own value (CUDA semantics).
    pub fn shfl_down<T: DeviceScalar>(&mut self, val: T, delta: usize) -> T {
        self.counters.warp_ops += 1;
        self.collective_count += 1;
        if self.warp.is_none()
            && (self.solo() || self.report_flags_drift("shfl_down", "uses_warp_ops"))
        {
            return val;
        }
        let w = self.warp_group();
        let lane = self.lane_id() as u32;
        let src = lane + delta as u32;
        let got = w.shfl(lane, val, src.min(w.lanes() - 1));
        if src < w.lanes() {
            got
        } else {
            val
        }
    }

    /// `__shfl_up_sync`: receive the value from `lane - delta`. Lanes before
    /// the start of the warp receive their own value.
    pub fn shfl_up<T: DeviceScalar>(&mut self, val: T, delta: usize) -> T {
        self.counters.warp_ops += 1;
        self.collective_count += 1;
        if self.warp.is_none()
            && (self.solo() || self.report_flags_drift("shfl_up", "uses_warp_ops"))
        {
            return val;
        }
        let w = self.warp_group();
        let lane = self.lane_id() as u32;
        let src = lane.checked_sub(delta as u32);
        let got = w.shfl(lane, val, src.unwrap_or(0));
        if src.is_some() {
            got
        } else {
            val
        }
    }

    /// `__shfl_xor_sync`: exchange with lane `lane ^ mask`.
    pub fn shfl_xor<T: DeviceScalar>(&mut self, val: T, mask: usize) -> T {
        self.counters.warp_ops += 1;
        self.collective_count += 1;
        if self.warp.is_none()
            && (self.solo() || self.report_flags_drift("shfl_xor", "uses_warp_ops"))
        {
            return val;
        }
        let lane = self.lane_id() as u32;
        self.warp_group().shfl(lane, val, lane ^ mask as u32)
    }

    /// `__ballot_sync`: bitmask of lanes whose predicate is true.
    pub fn ballot(&mut self, pred: bool) -> u64 {
        self.counters.warp_ops += 1;
        let op = self.collective_count;
        self.collective_count += 1;
        if self.warp.is_none()
            && (self.solo() || self.report_flags_drift("ballot", "uses_warp_ops"))
        {
            return u64::from(pred);
        }
        let lane = self.lane_id() as u32;
        self.warp_group().ballot(lane, pred, op)
    }

    /// `__any_sync`: true if any lane's predicate is true.
    pub fn any_sync(&mut self, pred: bool) -> bool {
        self.ballot(pred) != 0
    }

    /// `__all_sync`: true if every lane's predicate is true.
    ///
    /// Semantic note: the vote is counted against the warp's *original*
    /// lane set (CUDA's full-mask `__all_sync` semantics); lanes that
    /// returned from the kernel early count as not voting, so `all_sync`
    /// after an early exit is conservatively false — on hardware, naming an
    /// exited lane in the member mask is undefined behaviour.
    pub fn all_sync(&mut self, pred: bool) -> bool {
        let mask = self.ballot(pred);
        let lanes = match self.warp {
            Some(w) => w.lanes(),
            None => 1,
        };
        let full = if lanes >= 64 { u64::MAX } else { (1u64 << lanes) - 1 };
        mask == full
    }

    // ---- constant memory -----------------------------------------------------

    /// Counted constant-memory read (`__constant__` data): served by the
    /// broadcast-optimized constant cache, priced near register speed by
    /// the timing model.
    #[inline]
    pub fn cread<T: DeviceScalar>(&mut self, buf: &crate::constant::CBuf<T>, i: usize) -> T {
        self.counters.const_reads += 1;
        buf.get(i)
    }

    // ---- local memory ------------------------------------------------------

    /// Allocate a thread-local array that lives in *local memory*.
    ///
    /// On a GPU, a dynamically indexed per-thread array cannot live in
    /// registers; the compiler places it in "local" memory, which is
    /// thread-interleaved **global** memory — so every access is DRAM
    /// traffic. This is the storage class behind the RSBench `sigTfactors`
    /// array whose placement (local vs globalized-heap vs shared) drives
    /// the paper's §4.2.2 result.
    pub fn local_array<T: DeviceScalar>(&mut self, len: usize) -> LocalArray<T> {
        LocalArray { data: vec![T::default(); len] }
    }

    /// Counted local-memory load.
    #[inline]
    pub fn lread<T: DeviceScalar>(&mut self, arr: &LocalArray<T>, i: usize) -> T {
        self.counters.global_load_bytes += std::mem::size_of::<T>() as u64;
        arr.data[i]
    }

    /// Counted local-memory store.
    #[inline]
    pub fn lwrite<T: DeviceScalar>(&mut self, arr: &mut LocalArray<T>, i: usize, v: T) {
        self.counters.global_store_bytes += std::mem::size_of::<T>() as u64;
        arr.data[i] = v;
    }
}

/// A per-thread array in local memory (see [`ThreadCtx::local_array`]).
pub struct LocalArray<T: DeviceScalar> {
    data: Vec<T>,
}

impl<T: DeviceScalar> LocalArray<T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}
