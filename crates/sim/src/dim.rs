//! Grid/block geometry: `Dim3` and `LaunchConfig`.
//!
//! CUDA/HIP describe a kernel launch as a 3-D grid of 3-D thread blocks
//! (`dim3 gridSize(128, 64, 32)`); the paper's §3.2 extends OpenMP's
//! `num_teams`/`thread_limit` clauses to accept the same multi-dimensional
//! lists. This module is the common geometry vocabulary for both worlds.

use serde::{Deserialize, Serialize};

/// A three-dimensional extent, identical in spirit to CUDA's `dim3`.
///
/// Components default to 1, mirroring `dim3`'s constructor semantics, so
/// `Dim3::x(128)` is `dim3(128)` and `Dim3::new(8, 8, 1)` is `dim3(8, 8)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// A fully specified extent.
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// One-dimensional extent (`y = z = 1`).
    pub const fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// Two-dimensional extent (`z = 1`).
    pub const fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total number of elements covered by this extent.
    pub const fn count(&self) -> usize {
        self.x as usize * self.y as usize * self.z as usize
    }

    /// Linearize a coordinate within this extent (x fastest, like CUDA).
    pub const fn linear(&self, x: u32, y: u32, z: u32) -> usize {
        (z as usize * self.y as usize + y as usize) * self.x as usize + x as usize
    }

    /// Inverse of [`Dim3::linear`].
    pub const fn delinear(&self, idx: usize) -> (u32, u32, u32) {
        let x = (idx % self.x as usize) as u32;
        let rest = idx / self.x as usize;
        let y = (rest % self.y as usize) as u32;
        let z = (rest / self.y as usize) as u32;
        (x, y, z)
    }

    /// True when any component is zero (an invalid launch extent).
    pub const fn is_degenerate(&self) -> bool {
        self.x == 0 || self.y == 0 || self.z == 0
    }

    /// Number of dimensions that are larger than one (1 for a 1-D extent).
    pub fn dimensionality(&self) -> u32 {
        let mut d = 1;
        if self.y > 1 {
            d = 2;
        }
        if self.z > 1 {
            d = 3;
        }
        d
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::xy(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::new(x, y, z)
    }
}

impl From<[u32; 1]> for Dim3 {
    fn from(v: [u32; 1]) -> Self {
        Dim3::x(v[0])
    }
}

impl From<[u32; 2]> for Dim3 {
    fn from(v: [u32; 2]) -> Self {
        Dim3::xy(v[0], v[1])
    }
}

impl From<[u32; 3]> for Dim3 {
    fn from(v: [u32; 3]) -> Self {
        Dim3::new(v[0], v[1], v[2])
    }
}

/// Declaration of one statically-sized shared-memory array ("slot").
///
/// Kernels retrieve a slot through [`crate::thread::ThreadCtx::shared`]; the
/// simulator allocates one instance per thread block, mirroring `__shared__`
/// arrays in CUDA and the `groupprivate(team:)` directive the paper adopts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SharedSlotDecl {
    /// Element count of the array.
    pub len: usize,
    /// Size of one element in bytes (for shared-memory accounting).
    pub elem_bytes: usize,
    /// Name of the element type, validated on access.
    pub type_name: &'static str,
}

impl SharedSlotDecl {
    /// Bytes of shared memory this slot occupies per block.
    pub fn bytes(&self) -> usize {
        self.len * self.elem_bytes
    }
}

/// Full description of a kernel launch: geometry plus shared-memory layout.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid (CUDA `gridDim`).
    pub grid: Dim3,
    /// Number of threads in each block (CUDA `blockDim`).
    pub block: Dim3,
    /// Statically declared shared-memory arrays, indexed by slot id.
    pub shared_slots: Vec<SharedSlotDecl>,
    /// Extra dynamic shared memory in bytes (CUDA's third chevron argument).
    pub dynamic_shared_bytes: usize,
}

impl LaunchConfig {
    /// A launch with explicit grid and block extents.
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        LaunchConfig {
            grid: grid.into(),
            block: block.into(),
            shared_slots: Vec::new(),
            dynamic_shared_bytes: 0,
        }
    }

    /// 1-D launch covering at least `n` elements with `block_size` threads
    /// per block — the ubiquitous `(n + bs - 1) / bs` pattern from Figure 1.
    pub fn linear(n: usize, block_size: u32) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let blocks = n.div_ceil(block_size as usize).max(1) as u32;
        LaunchConfig::new(Dim3::x(blocks), Dim3::x(block_size))
    }

    /// Declare a statically-sized shared array of `len` elements of `T`.
    /// Returns the slot id used by `ThreadCtx::shared::<T>(slot)`.
    pub fn shared_array<T: crate::mem::DeviceScalar>(&mut self, len: usize) -> usize {
        let slot = self.shared_slots.len();
        self.shared_slots.push(SharedSlotDecl {
            len,
            elem_bytes: std::mem::size_of::<T>(),
            type_name: std::any::type_name::<T>(),
        });
        slot
    }

    /// Builder-style variant of [`LaunchConfig::shared_array`], discarding the
    /// slot id (useful when the kernel knows its slots by convention).
    pub fn with_shared_array<T: crate::mem::DeviceScalar>(mut self, len: usize) -> Self {
        self.shared_array::<T>(len);
        self
    }

    /// Builder-style setter for dynamic shared memory bytes.
    pub fn with_dynamic_shared(mut self, bytes: usize) -> Self {
        self.dynamic_shared_bytes = bytes;
        self
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> usize {
        self.block.count()
    }

    /// Number of blocks in the grid.
    pub fn num_blocks(&self) -> usize {
        self.grid.count()
    }

    /// Total simulated threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.num_blocks() * self.threads_per_block()
    }

    /// Total static + dynamic shared memory per block in bytes.
    pub fn shared_bytes_per_block(&self) -> usize {
        self.shared_slots.iter().map(SharedSlotDecl::bytes).sum::<usize>()
            + self.dynamic_shared_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_count_and_linearize() {
        let d = Dim3::new(4, 3, 2);
        assert_eq!(d.count(), 24);
        let mut seen = [false; 24];
        for z in 0..2 {
            for y in 0..3 {
                for x in 0..4 {
                    let l = d.linear(x, y, z);
                    assert!(!seen[l], "duplicate linear index");
                    seen[l] = true;
                    assert_eq!(d.delinear(l), (x, y, z));
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn dim3_constructors_default_to_one() {
        assert_eq!(Dim3::x(128), Dim3::new(128, 1, 1));
        assert_eq!(Dim3::xy(8, 4), Dim3::new(8, 4, 1));
        assert_eq!(Dim3::from(7u32).count(), 7);
        assert_eq!(Dim3::from([2u32, 3]).count(), 6);
        assert_eq!(Dim3::from((2u32, 3u32, 4u32)).count(), 24);
    }

    #[test]
    fn dimensionality() {
        assert_eq!(Dim3::x(10).dimensionality(), 1);
        assert_eq!(Dim3::xy(10, 2).dimensionality(), 2);
        assert_eq!(Dim3::new(1, 1, 2).dimensionality(), 3);
    }

    #[test]
    fn linear_launch_covers_n() {
        let cfg = LaunchConfig::linear(1000, 128);
        assert_eq!(cfg.num_blocks(), 8);
        assert_eq!(cfg.threads_per_block(), 128);
        assert!(cfg.total_threads() >= 1000);

        // Exact multiple does not round up.
        let cfg = LaunchConfig::linear(1024, 128);
        assert_eq!(cfg.num_blocks(), 8);

        // Zero-sized problems still launch one block.
        let cfg = LaunchConfig::linear(0, 128);
        assert_eq!(cfg.num_blocks(), 1);
    }

    #[test]
    fn shared_slot_accounting() {
        let mut cfg = LaunchConfig::new(1u32, 64u32);
        let s0 = cfg.shared_array::<f32>(128);
        let s1 = cfg.shared_array::<f64>(16);
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(cfg.shared_bytes_per_block(), 128 * 4 + 16 * 8);
        let cfg = cfg.with_dynamic_shared(256);
        assert_eq!(cfg.shared_bytes_per_block(), 128 * 4 + 16 * 8 + 256);
    }
}
