//! Sanitizer instrumentation: the simulator half of `ompx-sanitizer`.
//!
//! This module is the `compute-sanitizer` analogue's data plane. It owns the
//! diagnostic types and the per-device [`SanState`] that the executor and
//! [`crate::thread::ThreadCtx`] consult on every counted access while a
//! sanitizer session is attached (see [`crate::device::Device`]'s
//! `attach_sanitizer`). The tool framework, CLI surface, and report
//! formatting live in the `ompx-sanitizer` crate; keeping the hooks here
//! avoids a dependency cycle — the simulator cannot depend on its own
//! tooling.
//!
//! Tool semantics implemented by these hooks:
//!
//! * **memcheck** — out-of-bounds element indices and use-after-free on
//!   [`crate::mem::DBuf`] global memory (the access is suppressed and
//!   recorded instead of panicking, so one launch can report many findings),
//!   plus misaligned typed accesses through the byte-offset accessor.
//! * **racecheck** — the shared-memory shadow-cell detector (migrated from
//!   the legacy `LaunchConfig::racecheck` panic into recorded diagnostics)
//!   and cross-block conflicts on global memory: two blocks touching the
//!   same element in one launch, at least one write, no atomics. Blocks
//!   have no ordering within a launch, so this is exact, not timing-based.
//! * **synccheck** — barrier divergence (a lane that participated in block
//!   barriers abandons lanes still waiting at one) and invalid `shfl_sync`
//!   member masks.
//! * **initcheck** — reads of never-written cells in init-tracked global
//!   buffers (`Device::alloc_uninit`, the `cudaMalloc` contract) and in
//!   shared memory (undefined at block start on real hardware).
//! * **leakcheck** — allocations still live when the program explicitly
//!   resets the device (`Device::reset`, the `cudaDeviceReset` analogue);
//!   like the hardware tool, implicit process-exit teardown is not a leak.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Bitmask of enabled sanitizer tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToolMask(u32);

impl ToolMask {
    pub const NONE: ToolMask = ToolMask(0);
    pub const MEMCHECK: ToolMask = ToolMask(1 << 0);
    pub const RACECHECK: ToolMask = ToolMask(1 << 1);
    pub const SYNCCHECK: ToolMask = ToolMask(1 << 2);
    pub const INITCHECK: ToolMask = ToolMask(1 << 3);
    pub const LEAKCHECK: ToolMask = ToolMask(1 << 4);
    pub const ALL: ToolMask = ToolMask(0b11111);

    /// True when every tool in `other` is enabled in `self`.
    pub fn contains(self, other: ToolMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two masks.
    pub fn union(self, other: ToolMask) -> ToolMask {
        ToolMask(self.0 | other.0)
    }

    /// True when no tool is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for ToolMask {
    type Output = ToolMask;
    fn bitor(self, rhs: ToolMask) -> ToolMask {
        self.union(rhs)
    }
}

/// The kind of defect a diagnostic reports. Each kind belongs to exactly
/// one tool (see [`DiagKind::tool`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagKind {
    OutOfBounds,
    UseAfterFree,
    MisalignedAccess,
    SharedRace,
    GlobalRace,
    BarrierDivergence,
    InvalidShflMask,
    KernelFlagsDrift,
    UninitGlobalRead,
    UninitSharedRead,
    DeviceLeak,
}

impl DiagKind {
    /// The owning tool's name, as spelled on the `sanitize --tool` CLI.
    pub fn tool(self) -> &'static str {
        match self {
            DiagKind::OutOfBounds | DiagKind::UseAfterFree | DiagKind::MisalignedAccess => {
                "memcheck"
            }
            DiagKind::SharedRace | DiagKind::GlobalRace => "racecheck",
            DiagKind::BarrierDivergence
            | DiagKind::InvalidShflMask
            | DiagKind::KernelFlagsDrift => "synccheck",
            DiagKind::UninitGlobalRead | DiagKind::UninitSharedRead => "initcheck",
            DiagKind::DeviceLeak => "leakcheck",
        }
    }

    /// The mask bit of the owning tool.
    pub fn tool_mask(self) -> ToolMask {
        match self.tool() {
            "memcheck" => ToolMask::MEMCHECK,
            "racecheck" => ToolMask::RACECHECK,
            "synccheck" => ToolMask::SYNCCHECK,
            "initcheck" => ToolMask::INITCHECK,
            _ => ToolMask::LEAKCHECK,
        }
    }

    /// Short defect label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DiagKind::OutOfBounds => "out-of-bounds access",
            DiagKind::UseAfterFree => "use-after-free",
            DiagKind::MisalignedAccess => "misaligned typed access",
            DiagKind::SharedRace => "shared-memory data race",
            DiagKind::GlobalRace => "global-memory data race",
            DiagKind::BarrierDivergence => "barrier divergence",
            DiagKind::InvalidShflMask => "invalid shfl member mask",
            DiagKind::KernelFlagsDrift => "KernelFlags drift",
            DiagKind::UninitGlobalRead => "uninitialized global read",
            DiagKind::UninitSharedRead => "uninitialized shared read",
            DiagKind::DeviceLeak => "device memory leak",
        }
    }
}

/// One structured sanitizer finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub kind: DiagKind,
    /// Kernel the access executed in (empty for host-side findings such as
    /// leaks).
    pub kernel: String,
    /// Block coordinates of the offending thread.
    pub block: (u32, u32, u32),
    /// Thread coordinates within the block.
    pub thread: (u32, u32, u32),
    /// Element index / byte offset of the access, when applicable.
    pub address: Option<usize>,
    /// Label of the allocation involved (the "backtrace label" given at
    /// `alloc_labeled`, or a synthesized `alloc#N` tag).
    pub alloc: Option<String>,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind.tool(), self.kind.label())?;
        if !self.kernel.is_empty() {
            write!(
                f,
                " in kernel `{}` block ({},{},{}) thread ({},{},{})",
                self.kernel,
                self.block.0,
                self.block.1,
                self.block.2,
                self.thread.0,
                self.thread.1,
                self.thread.2
            )?;
        }
        if let Some(a) = self.address {
            write!(f, " at index {a}")?;
        }
        if let Some(l) = &self.alloc {
            write!(f, " of {l}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// A registered device allocation, tracked while a session is attached.
#[derive(Debug, Clone)]
pub struct AllocRecord {
    pub id: usize,
    pub label: String,
    pub bytes: usize,
    pub live: bool,
}

/// Identity of a global-memory access, for the cross-block race detector.
#[derive(Clone, Copy)]
struct GlobalAccess {
    block_rank: usize,
    block: (u32, u32, u32),
    write: bool,
}

/// How a counted global access touches memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalKind {
    Read,
    Write,
    Atomic,
}

/// Identity fields a [`crate::thread::ThreadCtx`] passes with each hook
/// call.
#[derive(Clone, Copy)]
pub struct AccessSite<'k> {
    pub kernel: &'k str,
    pub block: (u32, u32, u32),
    pub thread: (u32, u32, u32),
    pub block_rank: usize,
}

/// Cap on recorded diagnostics per session, to bound a pathological
/// kernel's report (the hardware tools do the same).
const MAX_DIAGNOSTICS: usize = 512;

/// Per-device sanitizer session state: enabled tools, recorded findings,
/// allocation registry, and the cross-block race shadow table.
pub struct SanState {
    enabled: ToolMask,
    diagnostics: Mutex<Vec<Diagnostic>>,
    /// Dedup: one report per (kind, allocation/site, address).
    seen: Mutex<HashSet<(DiagKind, usize, usize)>>,
    /// Cross-block race shadow: (alloc id, element) -> last plain access.
    /// Cleared at each launch (blocks are unordered only within a launch).
    global_shadow: Mutex<HashMap<(usize, usize), GlobalAccess>>,
    allocs: Mutex<Vec<AllocRecord>>,
}

impl SanState {
    /// Fresh session state with the given tools enabled.
    pub fn new(enabled: ToolMask) -> Arc<SanState> {
        Arc::new(SanState {
            enabled,
            diagnostics: Mutex::new(Vec::new()),
            seen: Mutex::new(HashSet::new()),
            global_shadow: Mutex::new(HashMap::new()),
            allocs: Mutex::new(Vec::new()),
        })
    }

    /// The session's enabled tools.
    pub fn enabled(&self) -> ToolMask {
        self.enabled
    }

    /// True when `tool` is enabled in this session.
    pub fn tool_on(&self, tool: ToolMask) -> bool {
        self.enabled.contains(tool)
    }

    /// Copy of the findings recorded so far.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.diagnostics.lock().clone()
    }

    /// Move the findings out, leaving the session empty.
    pub fn drain_diagnostics(&self) -> Vec<Diagnostic> {
        std::mem::take(&mut *self.diagnostics.lock())
    }

    /// Number of findings recorded so far.
    pub fn finding_count(&self) -> usize {
        self.diagnostics.lock().len()
    }

    /// Snapshot of the allocation registry.
    pub fn allocations(&self) -> Vec<AllocRecord> {
        self.allocs.lock().clone()
    }

    fn record(&self, diag: Diagnostic, dedup_key: (DiagKind, usize, usize)) {
        if !self.seen.lock().insert(dedup_key) {
            return;
        }
        if let Some(reg) = ompx_telemetry::active() {
            reg.counter_add("sanitizer_findings_total", &[("tool", diag.kind.tool())], 1);
        }
        let mut diags = self.diagnostics.lock();
        if diags.len() < MAX_DIAGNOSTICS {
            diags.push(diag);
        }
    }

    // ---- launch lifecycle ------------------------------------------------

    /// Reset per-launch state (called by the device at each launch).
    pub(crate) fn begin_launch(&self) {
        self.global_shadow.lock().clear();
    }

    // ---- allocation registry (memcheck / leakcheck) ----------------------

    /// Register a fresh allocation.
    pub(crate) fn on_alloc(&self, id: usize, label: String, bytes: usize) {
        self.allocs.lock().push(AllocRecord { id, label, bytes, live: true });
    }

    /// Rename a registered allocation (label attached after allocation).
    pub(crate) fn relabel_alloc(&self, id: usize, label: &str) {
        if let Some(rec) = self.allocs.lock().iter_mut().find(|r| r.id == id) {
            rec.label = label.to_string();
        }
    }

    /// Mark an allocation as freed.
    pub(crate) fn on_free(&self, id: usize) {
        if let Some(rec) = self.allocs.lock().iter_mut().find(|r| r.id == id) {
            rec.live = false;
        }
    }

    /// Leak scan at explicit device reset: every allocation registered in
    /// this session and never freed becomes a `DeviceLeak` finding.
    pub(crate) fn on_device_reset(&self, device_name: &str) {
        if !self.tool_on(ToolMask::LEAKCHECK) {
            return;
        }
        let leaks: Vec<AllocRecord> =
            self.allocs.lock().iter().filter(|r| r.live).cloned().collect();
        for rec in leaks {
            self.record(
                Diagnostic {
                    kind: DiagKind::DeviceLeak,
                    kernel: String::new(),
                    block: (0, 0, 0),
                    thread: (0, 0, 0),
                    address: None,
                    alloc: Some(rec.label.clone()),
                    message: format!(
                        "{} bytes allocated as {} still live at reset of {device_name}",
                        rec.bytes, rec.label
                    ),
                },
                (DiagKind::DeviceLeak, rec.id, 0),
            );
        }
    }

    // ---- device-side access hooks ---------------------------------------

    /// Global-memory access check. Returns `true` when the access must be
    /// suppressed (out-of-bounds or use-after-free under memcheck — the
    /// simulated hardware access does not happen; reads yield zero).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn global_access(
        &self,
        site: AccessSite<'_>,
        alloc_id: usize,
        alloc_label: &str,
        len: usize,
        freed: bool,
        index: usize,
        kind: GlobalKind,
        init_tracked_unwritten: bool,
    ) -> bool {
        if self.tool_on(ToolMask::MEMCHECK) {
            if freed {
                self.record(
                    Diagnostic {
                        kind: DiagKind::UseAfterFree,
                        kernel: site.kernel.to_string(),
                        block: site.block,
                        thread: site.thread,
                        address: Some(index),
                        alloc: Some(alloc_label.to_string()),
                        message: format!(
                            "{:?} of element {index} in freed allocation {alloc_label}",
                            kind
                        ),
                    },
                    (DiagKind::UseAfterFree, alloc_id, index),
                );
                return true;
            }
            if index >= len {
                self.record(
                    Diagnostic {
                        kind: DiagKind::OutOfBounds,
                        kernel: site.kernel.to_string(),
                        block: site.block,
                        thread: site.thread,
                        address: Some(index),
                        alloc: Some(alloc_label.to_string()),
                        message: format!(
                            "{:?} of element {index} past the end of {alloc_label} (len {len})",
                            kind
                        ),
                    },
                    (DiagKind::OutOfBounds, alloc_id, index),
                );
                return true;
            }
        }
        if index >= len || freed {
            // Without memcheck the simulator keeps its panic-on-OOB
            // contract; freed buffers retain their storage (refcounted).
            return false;
        }
        if kind == GlobalKind::Read && init_tracked_unwritten && self.tool_on(ToolMask::INITCHECK) {
            self.record(
                Diagnostic {
                    kind: DiagKind::UninitGlobalRead,
                    kernel: site.kernel.to_string(),
                    block: site.block,
                    thread: site.thread,
                    address: Some(index),
                    alloc: Some(alloc_label.to_string()),
                    message: format!("read of element {index} of {alloc_label} before any write"),
                },
                (DiagKind::UninitGlobalRead, alloc_id, index),
            );
        }
        if kind != GlobalKind::Atomic && self.tool_on(ToolMask::RACECHECK) {
            self.global_race_check(site, alloc_id, alloc_label, index, kind);
        }
        false
    }

    fn global_race_check(
        &self,
        site: AccessSite<'_>,
        alloc_id: usize,
        alloc_label: &str,
        index: usize,
        kind: GlobalKind,
    ) {
        let write = kind == GlobalKind::Write;
        let me = GlobalAccess { block_rank: site.block_rank, block: site.block, write };
        let prev = self.global_shadow.lock().insert((alloc_id, index), me);
        if let Some(prev) = prev {
            if prev.block_rank != site.block_rank && (write || prev.write) {
                self.record(
                    Diagnostic {
                        kind: DiagKind::GlobalRace,
                        kernel: site.kernel.to_string(),
                        block: site.block,
                        thread: site.thread,
                        address: Some(index),
                        alloc: Some(alloc_label.to_string()),
                        message: format!(
                            "element {index} of {alloc_label} {} by block ({},{},{}) and {} by \
                             block ({},{},{}) in the same launch without atomics",
                            if prev.write { "written" } else { "read" },
                            prev.block.0,
                            prev.block.1,
                            prev.block.2,
                            if write { "written" } else { "read" },
                            site.block.0,
                            site.block.1,
                            site.block.2,
                        ),
                    },
                    (DiagKind::GlobalRace, alloc_id, index),
                );
            }
        }
    }

    /// Misaligned typed access through the byte-offset accessor.
    pub(crate) fn misaligned_access(
        &self,
        site: AccessSite<'_>,
        alloc_id: usize,
        alloc_label: &str,
        byte_offset: usize,
        align: usize,
        type_name: &str,
    ) {
        if !self.tool_on(ToolMask::MEMCHECK) {
            return;
        }
        self.record(
            Diagnostic {
                kind: DiagKind::MisalignedAccess,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: Some(byte_offset),
                alloc: Some(alloc_label.to_string()),
                message: format!(
                    "{type_name} load at byte offset {byte_offset} of {alloc_label} \
                     (requires {align}-byte alignment)"
                ),
            },
            (DiagKind::MisalignedAccess, alloc_id, byte_offset),
        );
    }

    /// Shared-memory race reported by the shadow-cell detector.
    pub(crate) fn shared_race(
        &self,
        site: AccessSite<'_>,
        slot: usize,
        race: crate::shared::SharedRace,
    ) {
        self.record(
            Diagnostic {
                kind: DiagKind::SharedRace,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: Some(race.cell),
                alloc: Some(format!("shared slot {slot}")),
                message: format!(
                    "cell {} {} by lane {} and {} by lane {} within barrier epoch {} — \
                     missing sync_threads()?",
                    race.cell,
                    if race.prev_write { "written" } else { "read" },
                    race.prev_lane,
                    if race.this_write { "written" } else { "read" },
                    race.this_lane,
                    race.epoch,
                ),
            },
            (DiagKind::SharedRace, slot, race.cell),
        );
    }

    /// Uninitialized shared-memory read.
    pub(crate) fn uninit_shared_read(&self, site: AccessSite<'_>, slot: usize, index: usize) {
        if !self.tool_on(ToolMask::INITCHECK) {
            return;
        }
        self.record(
            Diagnostic {
                kind: DiagKind::UninitSharedRead,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: Some(index),
                alloc: Some(format!("shared slot {slot}")),
                message: format!(
                    "read of shared cell {index} before any write in this block \
                     (shared memory is undefined at block start)"
                ),
            },
            (DiagKind::UninitSharedRead, slot, index),
        );
    }

    /// Barrier divergence: a lane that participated in block barriers
    /// executed only `synced` of the `max` `sync_threads` its block
    /// reached, abandoning siblings at a barrier it skipped.
    pub(crate) fn barrier_divergence(&self, site: AccessSite<'_>, synced: u64, max: u64) {
        if !self.tool_on(ToolMask::SYNCCHECK) {
            return;
        }
        self.record(
            Diagnostic {
                kind: DiagKind::BarrierDivergence,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: None,
                alloc: None,
                message: format!(
                    "lane reached only {synced} of the block's {max} sync_threads barriers \
                     before exiting — divergent barrier"
                ),
            },
            (DiagKind::BarrierDivergence, site.block_rank, 0),
        );
    }

    /// `KernelFlags` drift: a kernel that never declared `uses_block_sync` /
    /// `uses_warp_ops` was launched on the serial path and then called a
    /// block or warp collective in a multi-thread block. Without a session
    /// the executor panics; under synccheck the collective degrades (barrier
    /// no-op, shuffle self-value) and the drift becomes a structured
    /// finding, so the whole launch can still be scanned. Returns `true`
    /// when the caller should degrade instead of panicking.
    pub(crate) fn flags_drift(&self, site: AccessSite<'_>, what: &str, missing: &str) -> bool {
        if !self.tool_on(ToolMask::SYNCCHECK) {
            return false;
        }
        self.record(
            Diagnostic {
                kind: DiagKind::KernelFlagsDrift,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: None,
                alloc: None,
                message: format!(
                    "{what} in a multi-thread block, but the kernel does not declare \
                     KernelFlags::{missing} — it ran on the serial path, so the \
                     collective degrades and results may be wrong"
                ),
            },
            (DiagKind::KernelFlagsDrift, site.block_rank, 0),
        );
        true
    }

    /// Invalid `shfl_sync` member mask.
    pub(crate) fn invalid_shfl_mask(
        &self,
        site: AccessSite<'_>,
        mask: u64,
        lane: usize,
        src_lane: usize,
    ) {
        if !self.tool_on(ToolMask::SYNCCHECK) {
            return;
        }
        self.record(
            Diagnostic {
                kind: DiagKind::InvalidShflMask,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: Some(src_lane),
                alloc: None,
                message: format!(
                    "shfl_sync mask {mask:#x} does not cover participating lane {lane} \
                     (source lane {src_lane})"
                ),
            },
            (DiagKind::InvalidShflMask, site.block_rank, lane),
        );
    }
}

/// Per-launch sanitizer context handed to the executor: the session plus
/// the kernel's name for diagnostics.
pub struct LaunchSan {
    pub(crate) state: Arc<SanState>,
    pub(crate) kernel: String,
}

impl LaunchSan {
    pub(crate) fn new(state: Arc<SanState>, kernel: &str) -> LaunchSan {
        state.begin_launch();
        LaunchSan { state, kernel: kernel.to_string() }
    }

    /// The session this launch reports into.
    pub fn state(&self) -> &SanState {
        &self.state
    }

    /// Kernel name for diagnostics.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_mask_algebra() {
        let m = ToolMask::MEMCHECK | ToolMask::RACECHECK;
        assert!(m.contains(ToolMask::MEMCHECK));
        assert!(!m.contains(ToolMask::SYNCCHECK));
        assert!(ToolMask::ALL.contains(m));
        assert!(ToolMask::NONE.is_empty());
        for kind in [
            DiagKind::OutOfBounds,
            DiagKind::SharedRace,
            DiagKind::BarrierDivergence,
            DiagKind::UninitGlobalRead,
            DiagKind::DeviceLeak,
        ] {
            assert!(ToolMask::ALL.contains(kind.tool_mask()));
        }
    }

    #[test]
    fn dedup_and_cap() {
        let s = SanState::new(ToolMask::ALL);
        let site = AccessSite { kernel: "k", block: (0, 0, 0), thread: (0, 0, 0), block_rank: 0 };
        for _ in 0..3 {
            assert!(s.global_access(site, 1, "buf", 4, false, 9, GlobalKind::Read, false));
        }
        assert_eq!(s.finding_count(), 1);
        assert_eq!(s.diagnostics()[0].kind, DiagKind::OutOfBounds);
    }

    #[test]
    fn leak_scan_reports_live_allocations_only() {
        let s = SanState::new(ToolMask::LEAKCHECK);
        s.on_alloc(1, "a".into(), 64);
        s.on_alloc(2, "b".into(), 128);
        s.on_free(1);
        s.on_device_reset("TestGPU");
        let d = s.diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, DiagKind::DeviceLeak);
        assert_eq!(d[0].alloc.as_deref(), Some("b"));
    }

    #[test]
    fn cross_block_race_requires_distinct_blocks_and_a_write() {
        let s = SanState::new(ToolMask::RACECHECK);
        let b0 = AccessSite { kernel: "k", block: (0, 0, 0), thread: (0, 0, 0), block_rank: 0 };
        let b1 = AccessSite { kernel: "k", block: (1, 0, 0), thread: (0, 0, 0), block_rank: 1 };
        // Read/read from two blocks: not a race.
        s.global_access(b0, 7, "buf", 16, false, 3, GlobalKind::Read, false);
        s.global_access(b1, 7, "buf", 16, false, 3, GlobalKind::Read, false);
        assert_eq!(s.finding_count(), 0);
        // Write from a different block: race.
        s.global_access(b0, 7, "buf", 16, false, 3, GlobalKind::Write, false);
        assert_eq!(s.finding_count(), 1);
        // Same-block write/write: not a cross-block race.
        s.begin_launch();
        s.global_access(b0, 7, "buf", 16, false, 5, GlobalKind::Write, false);
        s.global_access(b0, 7, "buf", 16, false, 5, GlobalKind::Write, false);
        assert_eq!(s.finding_count(), 1);
    }
}
