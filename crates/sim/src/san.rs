//! Sanitizer instrumentation: the simulator half of `ompx-sanitizer`.
//!
//! This module is the `compute-sanitizer` analogue's data plane. It owns the
//! diagnostic types and the per-device [`SanState`] that the executor and
//! [`crate::thread::ThreadCtx`] consult on every counted access while a
//! sanitizer session is attached (see [`crate::device::Device`]'s
//! `attach_sanitizer`). The tool framework, CLI surface, and report
//! formatting live in the `ompx-sanitizer` crate; keeping the hooks here
//! avoids a dependency cycle — the simulator cannot depend on its own
//! tooling.
//!
//! Tool semantics implemented by these hooks:
//!
//! * **memcheck** — out-of-bounds element indices and use-after-free on
//!   [`crate::mem::DBuf`] global memory (the access is suppressed and
//!   recorded instead of panicking, so one launch can report many findings),
//!   plus misaligned typed accesses through the byte-offset accessor.
//! * **racecheck** — the shared-memory per-cell fold detector (migrated
//!   from the legacy `LaunchConfig::racecheck` panic into recorded
//!   diagnostics) and cross-block conflicts on global memory: two blocks
//!   touching the same element in one launch, at least one write, no
//!   atomics. Blocks have no ordering within a launch, so this is exact,
//!   not timing-based — and because both detectors fold accesses into
//!   commutative summaries scanned at block/launch end, the findings are
//!   identical run to run regardless of host scheduling.
//! * **synccheck** — barrier divergence (a lane that participated in block
//!   barriers abandons lanes still waiting at one) and invalid `shfl_sync`
//!   member masks.
//! * **initcheck** — reads of never-written cells in init-tracked global
//!   buffers (`Device::alloc_uninit`, the `cudaMalloc` contract) and in
//!   shared memory (undefined at block start on real hardware).
//! * **leakcheck** — allocations still live when the program explicitly
//!   resets the device (`Device::reset`, the `cudaDeviceReset` analogue);
//!   like the hardware tool, implicit process-exit teardown is not a leak.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Bitmask of enabled sanitizer tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToolMask(u32);

impl ToolMask {
    pub const NONE: ToolMask = ToolMask(0);
    pub const MEMCHECK: ToolMask = ToolMask(1 << 0);
    pub const RACECHECK: ToolMask = ToolMask(1 << 1);
    pub const SYNCCHECK: ToolMask = ToolMask(1 << 2);
    pub const INITCHECK: ToolMask = ToolMask(1 << 3);
    pub const LEAKCHECK: ToolMask = ToolMask(1 << 4);
    pub const ALL: ToolMask = ToolMask(0b11111);

    /// True when every tool in `other` is enabled in `self`.
    pub fn contains(self, other: ToolMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two masks.
    pub fn union(self, other: ToolMask) -> ToolMask {
        ToolMask(self.0 | other.0)
    }

    /// True when no tool is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for ToolMask {
    type Output = ToolMask;
    fn bitor(self, rhs: ToolMask) -> ToolMask {
        self.union(rhs)
    }
}

/// The kind of defect a diagnostic reports. Each kind belongs to exactly
/// one tool (see [`DiagKind::tool`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagKind {
    OutOfBounds,
    UseAfterFree,
    MisalignedAccess,
    SharedRace,
    GlobalRace,
    BarrierDivergence,
    InvalidShflMask,
    KernelFlagsDrift,
    UninitGlobalRead,
    UninitSharedRead,
    DeviceLeak,
}

impl DiagKind {
    /// The owning tool's name, as spelled on the `sanitize --tool` CLI.
    pub fn tool(self) -> &'static str {
        match self {
            DiagKind::OutOfBounds | DiagKind::UseAfterFree | DiagKind::MisalignedAccess => {
                "memcheck"
            }
            DiagKind::SharedRace | DiagKind::GlobalRace => "racecheck",
            DiagKind::BarrierDivergence
            | DiagKind::InvalidShflMask
            | DiagKind::KernelFlagsDrift => "synccheck",
            DiagKind::UninitGlobalRead | DiagKind::UninitSharedRead => "initcheck",
            DiagKind::DeviceLeak => "leakcheck",
        }
    }

    /// The mask bit of the owning tool.
    pub fn tool_mask(self) -> ToolMask {
        match self.tool() {
            "memcheck" => ToolMask::MEMCHECK,
            "racecheck" => ToolMask::RACECHECK,
            "synccheck" => ToolMask::SYNCCHECK,
            "initcheck" => ToolMask::INITCHECK,
            _ => ToolMask::LEAKCHECK,
        }
    }

    /// Short defect label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DiagKind::OutOfBounds => "out-of-bounds access",
            DiagKind::UseAfterFree => "use-after-free",
            DiagKind::MisalignedAccess => "misaligned typed access",
            DiagKind::SharedRace => "shared-memory data race",
            DiagKind::GlobalRace => "global-memory data race",
            DiagKind::BarrierDivergence => "barrier divergence",
            DiagKind::InvalidShflMask => "invalid shfl member mask",
            DiagKind::KernelFlagsDrift => "KernelFlags drift",
            DiagKind::UninitGlobalRead => "uninitialized global read",
            DiagKind::UninitSharedRead => "uninitialized shared read",
            DiagKind::DeviceLeak => "device memory leak",
        }
    }
}

/// One structured sanitizer finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub kind: DiagKind,
    /// Kernel the access executed in (empty for host-side findings such as
    /// leaks).
    pub kernel: String,
    /// Block coordinates of the offending thread.
    pub block: (u32, u32, u32),
    /// Thread coordinates within the block.
    pub thread: (u32, u32, u32),
    /// Element index / byte offset of the access, when applicable.
    pub address: Option<usize>,
    /// Label of the allocation involved (the "backtrace label" given at
    /// `alloc_labeled`, or a synthesized `alloc#N` tag).
    pub alloc: Option<String>,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind.tool(), self.kind.label())?;
        if !self.kernel.is_empty() {
            write!(
                f,
                " in kernel `{}` block ({},{},{}) thread ({},{},{})",
                self.kernel,
                self.block.0,
                self.block.1,
                self.block.2,
                self.thread.0,
                self.thread.1,
                self.thread.2
            )?;
        }
        if let Some(a) = self.address {
            write!(f, " at index {a}")?;
        }
        if let Some(l) = &self.alloc {
            write!(f, " of {l}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// A registered device allocation, tracked while a session is attached.
#[derive(Debug, Clone)]
pub struct AllocRecord {
    pub id: usize,
    pub label: String,
    pub bytes: usize,
    pub live: bool,
}

/// One party to a potential cross-block race: a plain global access with
/// enough identity to rank it canonically and name it in a report.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Party {
    pub(crate) block_rank: usize,
    pub(crate) thread_rank: usize,
    pub(crate) block: (u32, u32, u32),
    pub(crate) thread: (u32, u32, u32),
    pub(crate) write: bool,
}

impl Party {
    /// Canonical ordering key: block-linear first, thread-linear second; on
    /// the same thread a write outranks a read so the representative's kind
    /// is deterministic.
    fn rank(self) -> (usize, usize, bool) {
        (self.block_rank, self.thread_rank, !self.write)
    }
}

/// Order-independent per-(allocation, element) access summary for the
/// cross-block race detector: the minimum-ranked write, the minimum-ranked
/// access, and the minimum-ranked access from a different block than that
/// one. Every fold step is commutative, so concurrent blocks can feed it in
/// any real-time order and the launch-end scan still reports the same
/// canonical conflicting pair.
#[derive(Debug, Default)]
struct GlobalCellFold {
    label: String,
    wmin: Option<Party>,
    amin: Option<Party>,
    amin2: Option<Party>,
}

impl GlobalCellFold {
    fn offer(&mut self, p: Party) {
        if p.write && self.wmin.is_none_or(|w| p.rank() < w.rank()) {
            self.wmin = Some(p);
        }
        match self.amin {
            None => self.amin = Some(p),
            Some(a) if p.rank() < a.rank() => {
                self.amin = Some(p);
                let mut runner = self.amin2.filter(|r| r.block_rank != p.block_rank);
                if a.block_rank != p.block_rank && runner.is_none_or(|r| a.rank() < r.rank()) {
                    runner = Some(a);
                }
                self.amin2 = runner;
            }
            Some(a) => {
                if p.block_rank != a.block_rank && self.amin2.is_none_or(|r| p.rank() < r.rank()) {
                    self.amin2 = Some(p);
                }
            }
        }
    }

    /// The canonical conflicting pair, if this summary is a cross-block
    /// race: at least one write and accesses from at least two blocks.
    fn conflict(&self) -> Option<(Party, Party)> {
        let w = self.wmin?;
        let second = self.amin2?;
        let a = self.amin?;
        let other = if a.block_rank != w.block_rank { a } else { second };
        Some(if w.rank() <= other.rank() { (w, other) } else { (other, w) })
    }
}

/// How a counted global access touches memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalKind {
    Read,
    Write,
    Atomic,
}

/// Identity fields a [`crate::thread::ThreadCtx`] passes with each hook
/// call.
#[derive(Clone, Copy)]
pub struct AccessSite<'k> {
    pub kernel: &'k str,
    pub block: (u32, u32, u32),
    pub thread: (u32, u32, u32),
    pub block_rank: usize,
}

/// Cap on recorded diagnostics per session, to bound a pathological
/// kernel's report (the hardware tools do the same).
const MAX_DIAGNOSTICS: usize = 512;

/// Dedup key: one report per (kind, allocation/site, address).
pub(crate) type DedupKey = (DiagKind, usize, usize);

/// A lane-local (or block-scan-local) diagnostic buffer. Device-side hooks
/// push here instead of into the shared session, so the set and order of a
/// lane's findings depend only on its own program order; the buffers are
/// merged into the session in canonical (block-rank, thread-rank) order at
/// launch end (see [`LaunchSan::finish`]).
#[derive(Debug, Default)]
pub(crate) struct DiagLog {
    diags: Vec<(Diagnostic, DedupKey)>,
    seen: HashSet<DedupKey>,
}

impl DiagLog {
    fn push(&mut self, diag: Diagnostic, key: DedupKey) {
        if self.diags.len() >= MAX_DIAGNOSTICS || !self.seen.insert(key) {
            return;
        }
        self.diags.push((diag, key));
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }
}

/// Per-device sanitizer session state: enabled tools, recorded findings,
/// and the allocation registry.
pub struct SanState {
    enabled: ToolMask,
    diagnostics: Mutex<Vec<Diagnostic>>,
    /// Dedup: one report per (kind, allocation/site, address).
    seen: Mutex<HashSet<DedupKey>>,
    allocs: Mutex<Vec<AllocRecord>>,
}

impl SanState {
    /// Fresh session state with the given tools enabled.
    pub fn new(enabled: ToolMask) -> Arc<SanState> {
        Arc::new(SanState {
            enabled,
            diagnostics: Mutex::new(Vec::new()),
            seen: Mutex::new(HashSet::new()),
            allocs: Mutex::new(Vec::new()),
        })
    }

    /// The session's enabled tools.
    pub fn enabled(&self) -> ToolMask {
        self.enabled
    }

    /// True when `tool` is enabled in this session.
    pub fn tool_on(&self, tool: ToolMask) -> bool {
        self.enabled.contains(tool)
    }

    /// Copy of the findings recorded so far.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.diagnostics.lock().clone()
    }

    /// Move the findings out, leaving the session empty.
    pub fn drain_diagnostics(&self) -> Vec<Diagnostic> {
        std::mem::take(&mut *self.diagnostics.lock())
    }

    /// Number of findings recorded so far.
    pub fn finding_count(&self) -> usize {
        self.diagnostics.lock().len()
    }

    /// Snapshot of the allocation registry.
    pub fn allocations(&self) -> Vec<AllocRecord> {
        self.allocs.lock().clone()
    }

    fn record(&self, diag: Diagnostic, dedup_key: DedupKey) {
        if !self.seen.lock().insert(dedup_key) {
            return;
        }
        if let Some(reg) = ompx_telemetry::active() {
            reg.counter_add("sanitizer_findings_total", &[("tool", diag.kind.tool())], 1);
        }
        let mut diags = self.diagnostics.lock();
        if diags.len() < MAX_DIAGNOSTICS {
            diags.push(diag);
        }
    }

    // ---- allocation registry (memcheck / leakcheck) ----------------------

    /// Register a fresh allocation.
    pub(crate) fn on_alloc(&self, id: usize, label: String, bytes: usize) {
        self.allocs.lock().push(AllocRecord { id, label, bytes, live: true });
    }

    /// Rename a registered allocation (label attached after allocation).
    pub(crate) fn relabel_alloc(&self, id: usize, label: &str) {
        if let Some(rec) = self.allocs.lock().iter_mut().find(|r| r.id == id) {
            rec.label = label.to_string();
        }
    }

    /// Mark an allocation as freed.
    pub(crate) fn on_free(&self, id: usize) {
        if let Some(rec) = self.allocs.lock().iter_mut().find(|r| r.id == id) {
            rec.live = false;
        }
    }

    /// Leak scan at explicit device reset: every allocation registered in
    /// this session and never freed becomes a `DeviceLeak` finding.
    pub(crate) fn on_device_reset(&self, device_name: &str) {
        if !self.tool_on(ToolMask::LEAKCHECK) {
            return;
        }
        let leaks: Vec<AllocRecord> =
            self.allocs.lock().iter().filter(|r| r.live).cloned().collect();
        for rec in leaks {
            self.record(
                Diagnostic {
                    kind: DiagKind::DeviceLeak,
                    kernel: String::new(),
                    block: (0, 0, 0),
                    thread: (0, 0, 0),
                    address: None,
                    alloc: Some(rec.label.clone()),
                    message: format!(
                        "{} bytes allocated as {} still live at reset of {device_name}",
                        rec.bytes, rec.label
                    ),
                },
                (DiagKind::DeviceLeak, rec.id, 0),
            );
        }
    }

    // ---- device-side access hooks ---------------------------------------

    /// Global-memory access check. Returns `true` when the access must be
    /// suppressed (out-of-bounds or use-after-free under memcheck — the
    /// simulated hardware access does not happen; reads yield zero).
    ///
    /// Findings go into the caller's lane-local `log`; the cross-block race
    /// fold is a separate per-launch step ([`LaunchSan::fold_global_access`])
    /// driven by [`crate::thread::ThreadCtx`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn global_access(
        &self,
        site: AccessSite<'_>,
        alloc_id: usize,
        alloc_label: &str,
        len: usize,
        freed: bool,
        index: usize,
        kind: GlobalKind,
        init_tracked_unwritten: bool,
        log: &mut DiagLog,
    ) -> bool {
        if self.tool_on(ToolMask::MEMCHECK) {
            if freed {
                log.push(
                    Diagnostic {
                        kind: DiagKind::UseAfterFree,
                        kernel: site.kernel.to_string(),
                        block: site.block,
                        thread: site.thread,
                        address: Some(index),
                        alloc: Some(alloc_label.to_string()),
                        message: format!(
                            "{:?} of element {index} in freed allocation {alloc_label}",
                            kind
                        ),
                    },
                    (DiagKind::UseAfterFree, alloc_id, index),
                );
                return true;
            }
            if index >= len {
                log.push(
                    Diagnostic {
                        kind: DiagKind::OutOfBounds,
                        kernel: site.kernel.to_string(),
                        block: site.block,
                        thread: site.thread,
                        address: Some(index),
                        alloc: Some(alloc_label.to_string()),
                        message: format!(
                            "{:?} of element {index} past the end of {alloc_label} (len {len})",
                            kind
                        ),
                    },
                    (DiagKind::OutOfBounds, alloc_id, index),
                );
                return true;
            }
        }
        if index >= len || freed {
            // Without memcheck the simulator keeps its panic-on-OOB
            // contract; freed buffers retain their storage (refcounted).
            return false;
        }
        if kind == GlobalKind::Read && init_tracked_unwritten && self.tool_on(ToolMask::INITCHECK) {
            log.push(
                Diagnostic {
                    kind: DiagKind::UninitGlobalRead,
                    kernel: site.kernel.to_string(),
                    block: site.block,
                    thread: site.thread,
                    address: Some(index),
                    alloc: Some(alloc_label.to_string()),
                    message: format!("read of element {index} of {alloc_label} before any write"),
                },
                (DiagKind::UninitGlobalRead, alloc_id, index),
            );
        }
        false
    }

    /// Misaligned typed access through the byte-offset accessor.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn misaligned_access(
        &self,
        site: AccessSite<'_>,
        alloc_id: usize,
        alloc_label: &str,
        byte_offset: usize,
        align: usize,
        type_name: &str,
        log: &mut DiagLog,
    ) {
        if !self.tool_on(ToolMask::MEMCHECK) {
            return;
        }
        log.push(
            Diagnostic {
                kind: DiagKind::MisalignedAccess,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: Some(byte_offset),
                alloc: Some(alloc_label.to_string()),
                message: format!(
                    "{type_name} load at byte offset {byte_offset} of {alloc_label} \
                     (requires {align}-byte alignment)"
                ),
            },
            (DiagKind::MisalignedAccess, alloc_id, byte_offset),
        );
    }

    /// Shared-memory race found by the block-end fold scan
    /// ([`crate::shared::BlockShared::collect_races`]).
    pub(crate) fn shared_race(
        &self,
        site: AccessSite<'_>,
        slot: usize,
        race: crate::shared::SharedRace,
        log: &mut DiagLog,
    ) {
        log.push(
            Diagnostic {
                kind: DiagKind::SharedRace,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: Some(race.cell),
                alloc: Some(format!("shared slot {slot}")),
                message: format!(
                    "cell {} {} by lane {} and {} by lane {} within barrier epoch {} — \
                     missing sync_threads()?",
                    race.cell,
                    if race.prev_write { "written" } else { "read" },
                    race.prev_lane,
                    if race.this_write { "written" } else { "read" },
                    race.this_lane,
                    race.epoch,
                ),
            },
            (DiagKind::SharedRace, slot, race.cell),
        );
    }

    /// Uninitialized shared-memory read.
    pub(crate) fn uninit_shared_read(
        &self,
        site: AccessSite<'_>,
        slot: usize,
        index: usize,
        log: &mut DiagLog,
    ) {
        if !self.tool_on(ToolMask::INITCHECK) {
            return;
        }
        log.push(
            Diagnostic {
                kind: DiagKind::UninitSharedRead,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: Some(index),
                alloc: Some(format!("shared slot {slot}")),
                message: format!(
                    "read of shared cell {index} before any write in this block \
                     (shared memory is undefined at block start)"
                ),
            },
            (DiagKind::UninitSharedRead, slot, index),
        );
    }

    /// Barrier divergence: a lane that participated in block barriers
    /// executed only `synced` of the `max` `sync_threads` its block
    /// reached, abandoning siblings at a barrier it skipped.
    pub(crate) fn barrier_divergence(
        &self,
        site: AccessSite<'_>,
        synced: u64,
        max: u64,
        log: &mut DiagLog,
    ) {
        if !self.tool_on(ToolMask::SYNCCHECK) {
            return;
        }
        log.push(
            Diagnostic {
                kind: DiagKind::BarrierDivergence,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: None,
                alloc: None,
                message: format!(
                    "lane reached only {synced} of the block's {max} sync_threads barriers \
                     before exiting — divergent barrier"
                ),
            },
            (DiagKind::BarrierDivergence, site.block_rank, 0),
        );
    }

    /// `KernelFlags` drift: a kernel that never declared `uses_block_sync` /
    /// `uses_warp_ops` was launched on the serial path and then called a
    /// block or warp collective in a multi-thread block. Without a session
    /// the executor panics; under synccheck the collective degrades (barrier
    /// no-op, shuffle self-value) and the drift becomes a structured
    /// finding, so the whole launch can still be scanned. Returns `true`
    /// when the caller should degrade instead of panicking.
    pub(crate) fn flags_drift(
        &self,
        site: AccessSite<'_>,
        what: &str,
        missing: &str,
        log: &mut DiagLog,
    ) -> bool {
        if !self.tool_on(ToolMask::SYNCCHECK) {
            return false;
        }
        log.push(
            Diagnostic {
                kind: DiagKind::KernelFlagsDrift,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: None,
                alloc: None,
                message: format!(
                    "{what} in a multi-thread block, but the kernel does not declare \
                     KernelFlags::{missing} — it ran on the serial path, so the \
                     collective degrades and results may be wrong"
                ),
            },
            (DiagKind::KernelFlagsDrift, site.block_rank, 0),
        );
        true
    }

    /// Invalid `shfl_sync` member mask.
    pub(crate) fn invalid_shfl_mask(
        &self,
        site: AccessSite<'_>,
        mask: u64,
        lane: usize,
        src_lane: usize,
        log: &mut DiagLog,
    ) {
        if !self.tool_on(ToolMask::SYNCCHECK) {
            return;
        }
        log.push(
            Diagnostic {
                kind: DiagKind::InvalidShflMask,
                kernel: site.kernel.to_string(),
                block: site.block,
                thread: site.thread,
                address: Some(src_lane),
                alloc: None,
                message: format!(
                    "shfl_sync mask {mask:#x} does not cover participating lane {lane} \
                     (source lane {src_lane})"
                ),
            },
            (DiagKind::InvalidShflMask, site.block_rank, lane),
        );
    }
}

/// A lane's (or block scan's) diagnostic buffer staged for the canonical
/// launch-end merge.
struct StagedDiagLog {
    block_rank: usize,
    /// Thread-linear rank for lane logs; `u64::MAX` for the block-end scan
    /// so it sorts after every lane of its block.
    order: u64,
    diags: Vec<(Diagnostic, DedupKey)>,
}

/// Per-launch sanitizer context handed to the executor: the session, the
/// kernel's name for diagnostics, the staged per-lane diagnostic buffers,
/// and the cross-block global-race fold. Nothing reaches the shared
/// [`SanState`] until [`LaunchSan::finish`] merges everything in canonical
/// order, so the session's findings are bit-identical run to run no matter
/// how the OS schedules the blocks.
pub struct LaunchSan {
    pub(crate) state: Arc<SanState>,
    pub(crate) kernel: String,
    staged: Mutex<Vec<StagedDiagLog>>,
    /// Cross-block race fold: (alloc id, element) -> access summary.
    /// Per-launch (blocks are unordered only within a launch).
    cells: Mutex<HashMap<(usize, usize), GlobalCellFold>>,
}

impl LaunchSan {
    pub(crate) fn new(state: Arc<SanState>, kernel: &str) -> LaunchSan {
        LaunchSan {
            state,
            kernel: kernel.to_string(),
            staged: Mutex::new(Vec::new()),
            cells: Mutex::new(HashMap::new()),
        }
    }

    /// The session this launch reports into.
    pub fn state(&self) -> &SanState {
        &self.state
    }

    /// Kernel name for diagnostics.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// Fold one plain (non-atomic, in-bounds) global access into the
    /// cross-block race summary. Commutative, so concurrent lanes may call
    /// it in any order.
    pub(crate) fn fold_global_access(
        &self,
        alloc_id: usize,
        alloc_label: &str,
        index: usize,
        party: Party,
    ) {
        let mut cells = self.cells.lock();
        let fold = cells.entry((alloc_id, index)).or_default();
        if fold.label.is_empty() {
            fold.label = alloc_label.to_string();
        }
        fold.offer(party);
    }

    /// Stage a lane's diagnostic buffer for the launch-end merge. Called
    /// once per lane when it finishes (including by panic unwinding).
    pub(crate) fn stage_lane(&self, block_rank: usize, thread_rank: usize, log: &mut DiagLog) {
        if log.is_empty() {
            return;
        }
        let log = std::mem::take(log);
        self.staged.lock().push(StagedDiagLog {
            block_rank,
            order: thread_rank as u64,
            diags: log.diags,
        });
    }

    /// Stage a block-end scan's diagnostics (shared-race fold results,
    /// barrier-divergence scan); they sort after every lane of the block.
    pub(crate) fn stage_block_scan(&self, block_rank: usize, log: DiagLog) {
        if log.is_empty() {
            return;
        }
        self.staged.lock().push(StagedDiagLog { block_rank, order: u64::MAX, diags: log.diags });
    }

    /// Merge everything into the session in canonical order: staged lane
    /// and block-scan buffers sorted by (block rank, thread rank), then the
    /// cross-block races sorted by (allocation, element). Called exactly
    /// once by the executor after all workers have stopped — including when
    /// the launch panicked, so partial findings are preserved.
    pub(crate) fn finish(&self) {
        let mut staged = std::mem::take(&mut *self.staged.lock());
        staged.sort_by_key(|a| (a.block_rank, a.order));
        for entry in staged {
            for (diag, key) in entry.diags {
                self.state.record(diag, key);
            }
        }

        let cells = std::mem::take(&mut *self.cells.lock());
        let mut keys: Vec<(usize, usize)> = cells.keys().copied().collect();
        keys.sort_unstable();
        for (alloc_id, index) in keys {
            let fold = &cells[&(alloc_id, index)];
            let Some((prev, cur)) = fold.conflict() else { continue };
            let label = &fold.label;
            self.state.record(
                Diagnostic {
                    kind: DiagKind::GlobalRace,
                    kernel: self.kernel.clone(),
                    block: cur.block,
                    thread: cur.thread,
                    address: Some(index),
                    alloc: Some(label.clone()),
                    message: format!(
                        "element {index} of {label} {} by block ({},{},{}) and {} by \
                         block ({},{},{}) in the same launch without atomics",
                        if prev.write { "written" } else { "read" },
                        prev.block.0,
                        prev.block.1,
                        prev.block.2,
                        if cur.write { "written" } else { "read" },
                        cur.block.0,
                        cur.block.1,
                        cur.block.2,
                    ),
                },
                (DiagKind::GlobalRace, alloc_id, index),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_mask_algebra() {
        let m = ToolMask::MEMCHECK | ToolMask::RACECHECK;
        assert!(m.contains(ToolMask::MEMCHECK));
        assert!(!m.contains(ToolMask::SYNCCHECK));
        assert!(ToolMask::ALL.contains(m));
        assert!(ToolMask::NONE.is_empty());
        for kind in [
            DiagKind::OutOfBounds,
            DiagKind::SharedRace,
            DiagKind::BarrierDivergence,
            DiagKind::UninitGlobalRead,
            DiagKind::DeviceLeak,
        ] {
            assert!(ToolMask::ALL.contains(kind.tool_mask()));
        }
    }

    #[test]
    fn dedup_and_cap() {
        let s = SanState::new(ToolMask::ALL);
        let launch = LaunchSan::new(s.clone(), "k");
        let site = AccessSite { kernel: "k", block: (0, 0, 0), thread: (0, 0, 0), block_rank: 0 };
        let mut log = DiagLog::default();
        for _ in 0..3 {
            assert!(s.global_access(
                site,
                1,
                "buf",
                4,
                false,
                9,
                GlobalKind::Read,
                false,
                &mut log
            ));
        }
        launch.stage_lane(0, 0, &mut log);
        launch.finish();
        assert_eq!(s.finding_count(), 1);
        assert_eq!(s.diagnostics()[0].kind, DiagKind::OutOfBounds);
    }

    #[test]
    fn cross_lane_dedup_happens_at_merge() {
        // Two lanes independently hit the same OOB element: each lane log
        // records it, the session dedups at the canonical merge.
        let s = SanState::new(ToolMask::MEMCHECK);
        let launch = LaunchSan::new(s.clone(), "k");
        for lane in 0..2u32 {
            let site =
                AccessSite { kernel: "k", block: (0, 0, 0), thread: (lane, 0, 0), block_rank: 0 };
            let mut log = DiagLog::default();
            s.global_access(site, 1, "buf", 4, false, 9, GlobalKind::Write, false, &mut log);
            launch.stage_lane(0, lane as usize, &mut log);
        }
        launch.finish();
        let d = s.diagnostics();
        assert_eq!(d.len(), 1);
        // Canonical merge: the lowest-ranked lane's report wins.
        assert_eq!(d[0].thread, (0, 0, 0));
    }

    #[test]
    fn leak_scan_reports_live_allocations_only() {
        let s = SanState::new(ToolMask::LEAKCHECK);
        s.on_alloc(1, "a".into(), 64);
        s.on_alloc(2, "b".into(), 128);
        s.on_free(1);
        s.on_device_reset("TestGPU");
        let d = s.diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, DiagKind::DeviceLeak);
        assert_eq!(d[0].alloc.as_deref(), Some("b"));
    }

    fn party(block_rank: usize, thread_rank: usize, write: bool) -> Party {
        Party {
            block_rank,
            thread_rank,
            block: (block_rank as u32, 0, 0),
            thread: (thread_rank as u32, 0, 0),
            write,
        }
    }

    #[test]
    fn cross_block_race_requires_distinct_blocks_and_a_write() {
        let s = SanState::new(ToolMask::RACECHECK);
        // Read/read from two blocks: not a race.
        let launch = LaunchSan::new(s.clone(), "k");
        launch.fold_global_access(7, "buf", 3, party(0, 0, false));
        launch.fold_global_access(7, "buf", 3, party(1, 0, false));
        launch.finish();
        assert_eq!(s.finding_count(), 0);
        // Add a write from one of the blocks: race.
        let launch = LaunchSan::new(s.clone(), "k");
        launch.fold_global_access(7, "buf", 3, party(0, 0, false));
        launch.fold_global_access(7, "buf", 3, party(1, 0, false));
        launch.fold_global_access(7, "buf", 3, party(0, 0, true));
        launch.finish();
        assert_eq!(s.finding_count(), 1);
        // Same-block write/write in a fresh launch: not a cross-block race.
        let launch = LaunchSan::new(s.clone(), "k");
        launch.fold_global_access(7, "buf", 5, party(0, 0, true));
        launch.fold_global_access(7, "buf", 5, party(0, 1, true));
        launch.finish();
        assert_eq!(s.finding_count(), 1);
    }

    #[test]
    fn global_race_report_is_fold_order_independent() {
        let accesses =
            [party(3, 1, false), party(1, 0, true), party(2, 5, false), party(1, 2, false)];
        let mut messages = Vec::new();
        for order in [false, true] {
            let s = SanState::new(ToolMask::RACECHECK);
            let launch = LaunchSan::new(s.clone(), "k");
            let mut seq = accesses.to_vec();
            if order {
                seq.reverse();
            }
            for p in seq {
                launch.fold_global_access(9, "buf", 0, p);
            }
            launch.finish();
            let d = s.diagnostics();
            assert_eq!(d.len(), 1);
            messages.push(format!("{}", d[0]));
        }
        assert_eq!(messages[0], messages[1]);
        // The canonical pair: block 1's write vs block 2's read (the
        // lowest-ranked access outside block 1).
        assert!(messages[0].contains("written by block (1,0,0) and read by block (2,0,0)"));
    }
}
