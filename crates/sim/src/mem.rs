//! Device global memory: typed buffers with well-defined concurrent access.
//!
//! A real GPU's global memory is shared by tens of thousands of concurrently
//! executing threads; racy programs observe *some* value, never undefined
//! behaviour at the ISA level. We reproduce that contract in safe Rust by
//! backing every buffer element with an atomic cell accessed with `Relaxed`
//! ordering: simultaneous unsynchronized accesses are a bug in the simulated
//! program, but they are memory-safe and yield one of the written values —
//! exactly the hardware behaviour.
//!
//! Buffers are reference-counted handles ([`DBuf`]); cloning a handle is the
//! device-pointer copy of `cudaMalloc`-style APIs, not a data copy.

use std::sync::atomic::{
    AtomicBool, AtomicI32, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};
use std::sync::{Arc, OnceLock};

/// Monotonic allocation ids, unique process-wide. Sanitizer diagnostics and
/// the leak registry key on these rather than addresses.
static NEXT_ALLOC_ID: AtomicUsize = AtomicUsize::new(1);

/// Scalar types that can live in simulated device memory.
///
/// Each scalar maps onto an atomic representation so that concurrent access
/// from simulated threads is defined behaviour (see module docs). The trait
/// is sealed by construction: implement it only via the macro below.
pub trait DeviceScalar:
    Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static
{
    /// The atomic cell type backing one element.
    type Atomic: Send + Sync;

    /// Create a cell holding `v`.
    fn new_cell(v: Self) -> Self::Atomic;
    /// Relaxed load.
    fn load(cell: &Self::Atomic) -> Self;
    /// Relaxed store.
    fn store(cell: &Self::Atomic, v: Self);
    /// Atomic fetch-add returning the previous value.
    fn fetch_add(cell: &Self::Atomic, v: Self) -> Self;
    /// Atomic fetch-min returning the previous value.
    fn fetch_min(cell: &Self::Atomic, v: Self) -> Self;
    /// Atomic fetch-max returning the previous value.
    fn fetch_max(cell: &Self::Atomic, v: Self) -> Self;
    /// Atomic compare-exchange; returns Ok(previous) on success.
    fn compare_exchange(cell: &Self::Atomic, current: Self, new: Self) -> Result<Self, Self>;
    /// Pack into a 64-bit transport word (used by warp shuffles).
    fn to_word(self) -> u64;
    /// Unpack from a 64-bit transport word.
    fn from_word(w: u64) -> Self;
}

macro_rules! int_scalar {
    ($t:ty, $atomic:ty) => {
        impl DeviceScalar for $t {
            type Atomic = $atomic;

            fn new_cell(v: Self) -> Self::Atomic {
                <$atomic>::new(v)
            }
            fn load(cell: &Self::Atomic) -> Self {
                cell.load(Ordering::Relaxed)
            }
            fn store(cell: &Self::Atomic, v: Self) {
                cell.store(v, Ordering::Relaxed)
            }
            fn fetch_add(cell: &Self::Atomic, v: Self) -> Self {
                cell.fetch_add(v, Ordering::Relaxed)
            }
            fn fetch_min(cell: &Self::Atomic, v: Self) -> Self {
                cell.fetch_min(v, Ordering::Relaxed)
            }
            fn fetch_max(cell: &Self::Atomic, v: Self) -> Self {
                cell.fetch_max(v, Ordering::Relaxed)
            }
            fn compare_exchange(
                cell: &Self::Atomic,
                current: Self,
                new: Self,
            ) -> Result<Self, Self> {
                cell.compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
            }
            fn to_word(self) -> u64 {
                self as u64
            }
            fn from_word(w: u64) -> Self {
                w as $t
            }
        }
    };
}

int_scalar!(u32, AtomicU32);
int_scalar!(i32, AtomicI32);
int_scalar!(u64, AtomicU64);
int_scalar!(i64, AtomicI64);
int_scalar!(usize, AtomicUsize);

macro_rules! float_scalar {
    ($t:ty, $bits:ty, $atomic:ty, $to_bits:ident, $from_bits:ident) => {
        impl DeviceScalar for $t {
            type Atomic = $atomic;

            fn new_cell(v: Self) -> Self::Atomic {
                <$atomic>::new(v.$to_bits())
            }
            fn load(cell: &Self::Atomic) -> Self {
                <$t>::$from_bits(cell.load(Ordering::Relaxed))
            }
            fn store(cell: &Self::Atomic, v: Self) {
                cell.store(v.$to_bits(), Ordering::Relaxed)
            }
            fn fetch_add(cell: &Self::Atomic, v: Self) -> Self {
                // CAS loop, the same strategy GPUs use for FP atomics on
                // architectures without native support.
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let old = <$t>::$from_bits(cur);
                    let new = (old + v).$to_bits();
                    match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
                    {
                        Ok(_) => return old,
                        Err(actual) => cur = actual,
                    }
                }
            }
            fn fetch_min(cell: &Self::Atomic, v: Self) -> Self {
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let old = <$t>::$from_bits(cur);
                    let new = if v < old { v } else { old };
                    match cell.compare_exchange_weak(
                        cur,
                        new.$to_bits(),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return old,
                        Err(actual) => cur = actual,
                    }
                }
            }
            fn fetch_max(cell: &Self::Atomic, v: Self) -> Self {
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let old = <$t>::$from_bits(cur);
                    let new = if v > old { v } else { old };
                    match cell.compare_exchange_weak(
                        cur,
                        new.$to_bits(),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return old,
                        Err(actual) => cur = actual,
                    }
                }
            }
            fn compare_exchange(
                cell: &Self::Atomic,
                current: Self,
                new: Self,
            ) -> Result<Self, Self> {
                cell.compare_exchange(
                    current.$to_bits(),
                    new.$to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .map(<$t>::$from_bits)
                .map_err(<$t>::$from_bits)
            }
            fn to_word(self) -> u64 {
                self.$to_bits() as u64
            }
            fn from_word(w: u64) -> Self {
                <$t>::$from_bits(w as $bits)
            }
        }
    };
}

float_scalar!(f32, u32, AtomicU32, to_bits, from_bits);
float_scalar!(f64, u64, AtomicU64, to_bits, from_bits);

/// Point-in-time image of one buffer, taken by the device's watchdog
/// checkpoint machinery before a partial-commit launch failure. Holds the
/// element values (as 64-bit transport words) and, for init-tracked
/// buffers, the raw initialization bitmap, so a restore rolls back
/// initcheck state along with the data.
pub(crate) struct BufImage {
    words: Vec<u64>,
    init: Option<Vec<u64>>,
}

/// Type-erased checkpoint access to one allocation. Implemented by the
/// buffer's shared inner state so [`crate::device::Device`] can keep a
/// registry of `Weak<dyn CheckpointTarget>` handles without knowing
/// element types.
pub(crate) trait CheckpointTarget: Send + Sync {
    /// The diagnostic label, if one was attached. Unlabeled allocations
    /// return `None` and cannot be excluded by a write-set hint.
    fn target_label(&self) -> Option<String>;
    /// True once `Device::free` released the allocation.
    fn target_freed(&self) -> bool;
    /// Snapshot the buffer's contents and init bitmap.
    fn save(&self) -> BufImage;
    /// Restore an image taken by [`CheckpointTarget::save`]. Writes the
    /// init bitmap back verbatim (bypassing `mark_init`), so elements that
    /// were uninitialized at checkpoint time become uninitialized again.
    fn restore(&self, image: &BufImage);
}

impl<T: DeviceScalar> CheckpointTarget for DBufInner<T> {
    fn target_label(&self) -> Option<String> {
        self.label.get().cloned()
    }

    fn target_freed(&self) -> bool {
        self.freed.load(Ordering::Relaxed)
    }

    fn save(&self) -> BufImage {
        BufImage {
            words: self.cells.iter().map(|c| T::load(c).to_word()).collect(),
            init: self
                .init
                .as_ref()
                .map(|bits| bits.iter().map(|b| b.load(Ordering::Relaxed)).collect()),
        }
    }

    fn restore(&self, image: &BufImage) {
        for (cell, &w) in self.cells.iter().zip(&image.words) {
            T::store(cell, T::from_word(w));
        }
        if let (Some(bits), Some(saved)) = (&self.init, &image.init) {
            for (bit, &w) in bits.iter().zip(saved) {
                bit.store(w, Ordering::Relaxed);
            }
        }
    }
}

struct DBufInner<T: DeviceScalar> {
    cells: Box<[T::Atomic]>,
    device_id: usize,
    /// Process-unique allocation id (sanitizer registry key).
    alloc_id: usize,
    /// Human-readable label for diagnostics (`alloc_labeled`), set at most
    /// once; defaults to `alloc#<id>`.
    label: OnceLock<String>,
    /// Set by `Device::free`. Storage stays valid (refcounted), so stale
    /// handles remain memory-safe; memcheck uses this to flag use-after-free.
    freed: AtomicBool,
    /// One bit per element when the buffer was created uninitialized
    /// (`Device::alloc_uninit`, the `cudaMalloc` contract); `None` for
    /// zero-initialised or host-seeded buffers, which are fully defined.
    init: Option<Box<[AtomicU64]>>,
}

/// A typed device global-memory buffer.
///
/// `DBuf<T>` is the simulator's `T* /* device pointer */`: cloning the handle
/// aliases the same memory, and all element access is bounds-checked (a real
/// GPU would fault; we panic with a precise message). Host-side helpers
/// (`to_vec`, `copy_from_host`, …) model `cudaMemcpy`; simulated threads
/// should instead go through [`crate::thread::ThreadCtx`] so traffic is
/// charged to the timing model.
///
/// ```
/// use ompx_sim::prelude::*;
/// let dev = Device::new(DeviceProfile::test_small());
/// let buf = dev.alloc_from(&[1.0f32, 2.0, 3.0]);
/// let alias = buf.clone();          // device-pointer copy, same storage
/// alias.set(0, 10.0);
/// assert_eq!(buf.to_vec(), vec![10.0, 2.0, 3.0]);
/// assert_eq!(buf.atomic_add(1, 0.5), 2.0);
/// ```
pub struct DBuf<T: DeviceScalar> {
    inner: Arc<DBufInner<T>>,
}

impl<T: DeviceScalar> Clone for DBuf<T> {
    fn clone(&self) -> Self {
        DBuf { inner: Arc::clone(&self.inner) }
    }
}

impl<T: DeviceScalar> DBuf<T> {
    pub(crate) fn new_zeroed(len: usize, device_id: usize) -> Self {
        let cells: Box<[T::Atomic]> =
            (0..len).map(|_| T::new_cell(T::default())).collect::<Vec<_>>().into_boxed_slice();
        Self::from_parts(cells, device_id, false)
    }

    /// Like [`DBuf::new_zeroed`] but with an initialization bitmap: elements
    /// read before any write are flagged by initcheck, the contract of
    /// `cudaMalloc` memory. (Storage is still physically zeroed — reads of
    /// uninitialized cells yield `T::default()`, a defined value, just as the
    /// rest of the simulator keeps racy programs memory-safe.)
    pub(crate) fn new_uninit(len: usize, device_id: usize) -> Self {
        let cells: Box<[T::Atomic]> =
            (0..len).map(|_| T::new_cell(T::default())).collect::<Vec<_>>().into_boxed_slice();
        Self::from_parts(cells, device_id, true)
    }

    pub(crate) fn from_slice(data: &[T], device_id: usize) -> Self {
        let cells: Box<[T::Atomic]> =
            data.iter().map(|&v| T::new_cell(v)).collect::<Vec<_>>().into_boxed_slice();
        Self::from_parts(cells, device_id, false)
    }

    fn from_parts(cells: Box<[T::Atomic]>, device_id: usize, track_init: bool) -> Self {
        let len = cells.len();
        let init = track_init
            .then(|| (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into());
        DBuf {
            inner: Arc::new(DBufInner {
                cells,
                device_id,
                alloc_id: NEXT_ALLOC_ID.fetch_add(1, Ordering::Relaxed),
                label: OnceLock::new(),
                freed: AtomicBool::new(false),
                init,
            }),
        }
    }

    /// Type-erased handle for the device's checkpoint registry.
    pub(crate) fn checkpoint_target(&self) -> Arc<dyn CheckpointTarget> {
        self.inner.clone()
    }

    /// Process-unique id of this allocation (shared by all aliasing handles).
    pub fn alloc_id(&self) -> usize {
        self.inner.alloc_id
    }

    /// Diagnostic label: the name given at `alloc_labeled`, else `alloc#N`.
    pub fn label(&self) -> String {
        self.inner.label.get().cloned().unwrap_or_else(|| format!("alloc#{}", self.alloc_id()))
    }

    /// Attach a diagnostic label. First caller wins; later calls are no-ops.
    pub fn set_label(&self, label: &str) {
        let _ = self.inner.label.set(label.to_string());
    }

    /// True once `Device::free` released this allocation.
    pub fn is_freed(&self) -> bool {
        self.inner.freed.load(Ordering::Relaxed)
    }

    pub(crate) fn mark_freed(&self) {
        self.inner.freed.store(true, Ordering::Relaxed);
    }

    /// True when the buffer tracks per-element initialization (initcheck).
    pub fn init_tracked(&self) -> bool {
        self.inner.init.is_some()
    }

    /// True when element `i` of an init-tracked buffer has never been
    /// written. Always `false` for untracked buffers.
    #[inline]
    pub(crate) fn is_unwritten(&self, i: usize) -> bool {
        match &self.inner.init {
            Some(bits) => bits[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) == 0,
            None => false,
        }
    }

    #[inline]
    fn mark_init(&self, i: usize) {
        if let Some(bits) = &self.inner.init {
            if i < self.len() {
                bits[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
            }
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.cells.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.inner.cells.is_empty()
    }

    /// Size in bytes (by element type, not atomic representation).
    pub fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }

    /// Id of the owning device.
    pub fn device_id(&self) -> usize {
        self.inner.device_id
    }

    /// Two handles alias the same device allocation.
    pub fn same_allocation(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    #[inline]
    fn cell(&self, i: usize) -> &T::Atomic {
        &self.inner.cells[i]
    }

    /// Uncounted element load (host-side or runtime-internal use).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        T::load(self.cell(i))
    }

    /// Uncounted element store (host-side or runtime-internal use).
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        self.mark_init(i);
        T::store(self.cell(i), v)
    }

    /// Uncounted atomic add; returns the previous value.
    #[inline]
    pub fn atomic_add(&self, i: usize, v: T) -> T {
        self.mark_init(i);
        T::fetch_add(self.cell(i), v)
    }

    /// Uncounted atomic min; returns the previous value.
    #[inline]
    pub fn atomic_min(&self, i: usize, v: T) -> T {
        self.mark_init(i);
        T::fetch_min(self.cell(i), v)
    }

    /// Uncounted atomic max; returns the previous value.
    #[inline]
    pub fn atomic_max(&self, i: usize, v: T) -> T {
        self.mark_init(i);
        T::fetch_max(self.cell(i), v)
    }

    /// Uncounted compare-exchange; `Ok(previous)` on success.
    #[inline]
    pub fn compare_exchange(&self, i: usize, current: T, new: T) -> Result<T, T> {
        self.mark_init(i);
        T::compare_exchange(self.cell(i), current, new)
    }

    /// Copy the whole buffer to a host `Vec` (device-to-host memcpy).
    pub fn to_vec(&self) -> Vec<T> {
        meter_copy("d2h", self.len() * std::mem::size_of::<T>());
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Copy `src` into the buffer starting at element 0 (host-to-device
    /// memcpy). Panics if `src` is longer than the buffer.
    pub fn copy_from_host(&self, src: &[T]) {
        assert!(
            src.len() <= self.len(),
            "host-to-device copy of {} elements into buffer of {}",
            src.len(),
            self.len()
        );
        meter_copy("h2d", std::mem::size_of_val(src));
        for (i, &v) in src.iter().enumerate() {
            self.set(i, v);
        }
    }

    /// Copy the buffer into `dst` (device-to-host memcpy). Panics if `dst`
    /// is longer than the buffer.
    pub fn copy_to_host(&self, dst: &mut [T]) {
        assert!(
            dst.len() <= self.len(),
            "device-to-host copy of {} elements from buffer of {}",
            dst.len(),
            self.len()
        );
        meter_copy("d2h", std::mem::size_of_val(dst));
        for (i, v) in dst.iter_mut().enumerate() {
            *v = self.get(i);
        }
    }

    /// Device-to-device copy of `len` elements (`cudaMemcpyDeviceToDevice`).
    pub fn copy_from_device(&self, src: &DBuf<T>, len: usize) {
        assert!(len <= src.len() && len <= self.len(), "device-to-device copy out of range");
        meter_copy("d2d", len * std::mem::size_of::<T>());
        for i in 0..len {
            self.set(i, src.get(i));
        }
    }

    /// Fill every element with `v` (`cudaMemset` analogue for typed data).
    pub fn fill(&self, v: T) {
        for i in 0..self.len() {
            self.set(i, v);
        }
    }
}

/// Count a modeled transfer on the ambient metric registry, if one is
/// installed, labeled by direction. Sits on the `DBuf` copy methods — the
/// one choke point every runtime's memcpy path (fallible device API,
/// hostrt mapping, klang) flows through.
fn meter_copy(dir: &'static str, bytes: usize) {
    if let Some(reg) = ompx_telemetry::active() {
        reg.counter_add("sim_memcpys_total", &[("dir", dir)], 1);
        reg.counter_add("sim_memcpy_bytes_total", &[("dir", dir)], bytes as u64);
    }
}

impl<T: DeviceScalar> std::fmt::Debug for DBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DBuf<{}>(len={}, dev={})",
            std::any::type_name::<T>(),
            self.len(),
            self.device_id()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_host_copies() {
        let buf = DBuf::<f32>::new_zeroed(8, 0);
        assert_eq!(buf.to_vec(), vec![0.0; 8]);
        buf.copy_from_host(&[1.0, 2.0, 3.0]);
        assert_eq!(buf.get(1), 2.0);
        let mut out = vec![0.0f32; 2];
        buf.copy_to_host(&mut out);
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn clone_aliases_same_memory() {
        let a = DBuf::<u32>::from_slice(&[1, 2, 3], 0);
        let b = a.clone();
        b.set(0, 42);
        assert_eq!(a.get(0), 42);
        assert!(a.same_allocation(&b));
        let c = DBuf::<u32>::from_slice(&[1, 2, 3], 0);
        assert!(!a.same_allocation(&c));
    }

    #[test]
    fn atomic_ops_integer() {
        let buf = DBuf::<u32>::from_slice(&[10], 0);
        assert_eq!(buf.atomic_add(0, 5), 10);
        assert_eq!(buf.get(0), 15);
        assert_eq!(buf.atomic_min(0, 3), 15);
        assert_eq!(buf.get(0), 3);
        assert_eq!(buf.atomic_max(0, 100), 3);
        assert_eq!(buf.get(0), 100);
        assert_eq!(buf.compare_exchange(0, 100, 7), Ok(100));
        assert_eq!(buf.compare_exchange(0, 100, 9), Err(7));
    }

    #[test]
    fn atomic_add_float_cas_loop() {
        let buf = DBuf::<f64>::from_slice(&[1.5], 0);
        assert_eq!(buf.atomic_add(0, 2.5), 1.5);
        assert_eq!(buf.get(0), 4.0);
    }

    #[test]
    fn concurrent_atomic_adds_are_exact() {
        let buf = DBuf::<f32>::new_zeroed(1, 0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = buf.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        b.atomic_add(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(buf.get(0), 8000.0);
    }

    #[test]
    fn device_to_device_copy_and_fill() {
        let a = DBuf::<i64>::from_slice(&[5, 6, 7, 8], 0);
        let b = DBuf::<i64>::new_zeroed(4, 0);
        b.copy_from_device(&a, 3);
        assert_eq!(b.to_vec(), vec![5, 6, 7, 0]);
        b.fill(-1);
        assert_eq!(b.to_vec(), vec![-1; 4]);
    }

    #[test]
    #[should_panic(expected = "host-to-device copy")]
    fn oversized_host_copy_panics() {
        let buf = DBuf::<u32>::new_zeroed(2, 0);
        buf.copy_from_host(&[1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_access_panics() {
        let buf = DBuf::<u32>::new_zeroed(2, 0);
        buf.get(2);
    }
}
