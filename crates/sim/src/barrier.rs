//! A reusable sense-reversing barrier tuned for oversubscribed simulation.
//!
//! The executor runs a thread block's lanes on real OS threads, usually many
//! more lanes than hardware cores. A pure spin barrier would burn the very
//! cores the other lanes need, so this barrier spins briefly (cheap when the
//! machine has spare cores) and then parks on a condvar (cheap when it does
//! not). Participant count is fixed at construction; the executor builds one
//! barrier per block team sized to the launch's block dimension.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// How many times a waiter spins before parking.
const SPIN_LIMIT: u32 = 64;

/// A reusable barrier for a fixed set of participants.
pub struct SenseBarrier {
    participants: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl SenseBarrier {
    /// A barrier for `participants` threads. Panics if zero.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "barrier needs at least one participant");
        SenseBarrier {
            participants,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Number of participants required per phase.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Block until all participants have arrived. Returns `true` for exactly
    /// one "leader" thread per phase (the last to arrive).
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Acquire);
        let pos = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if pos == self.participants {
            // Last arrival: reset the counter and flip the sense.
            self.arrived.store(0, Ordering::Release);
            let _guard = self.lock.lock();
            self.sense.store(my_sense, Ordering::Release);
            self.cv.notify_all();
            return true;
        }
        // Spin briefly, then park.
        let mut spins = 0;
        while self.sense.load(Ordering::Acquire) != my_sense {
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
                spins += 1;
            } else {
                let mut guard = self.lock.lock();
                while self.sense.load(Ordering::Acquire) != my_sense {
                    self.cv.wait(&mut guard);
                }
                break;
            }
        }
        false
    }
}

/// A barrier whose participants may *retire* (stop participating) at any
/// phase boundary — the behaviour of CUDA's `__syncthreads()` when some
/// threads of the block have already returned from the kernel: exited
/// threads count as arrived for every subsequent barrier.
///
/// Used for intra-kernel `sync_threads`/`sync_warp`, where lanes that finish
/// the kernel body early call [`RetireBarrier::retire`] so the remaining
/// lanes' barriers still complete.
pub struct RetireBarrier {
    state: Mutex<RetireState>,
    cv: Condvar,
}

struct RetireState {
    active: usize,
    arrived: usize,
    phase: u64,
}

impl RetireBarrier {
    /// A barrier initially expecting `active` participants.
    pub fn new(active: usize) -> Self {
        RetireBarrier {
            state: Mutex::new(RetireState { active, arrived: 0, phase: 0 }),
            cv: Condvar::new(),
        }
    }

    /// Arrive and wait for the current phase to complete. Returns `true` for
    /// the lane that completed the phase.
    pub fn wait(&self) -> bool {
        let mut st = self.state.lock();
        st.arrived += 1;
        if st.arrived >= st.active {
            st.arrived = 0;
            st.phase += 1;
            self.cv.notify_all();
            return true;
        }
        let my_phase = st.phase;
        while st.phase == my_phase {
            self.cv.wait(&mut st);
        }
        false
    }

    /// Permanently stop participating. If this retirement completes the
    /// current phase, the waiting lanes are released; their count is
    /// returned (zero otherwise). A non-zero return means lanes were
    /// parked mid-`sync_threads` when this lane exited the kernel — the
    /// signature synccheck uses to flag barrier divergence.
    pub fn retire(&self) -> usize {
        let mut st = self.state.lock();
        debug_assert!(st.active > 0, "retire on an empty barrier");
        st.active -= 1;
        if st.active > 0 && st.arrived >= st.active {
            let released = st.arrived;
            st.arrived = 0;
            st.phase += 1;
            self.cv.notify_all();
            return released;
        }
        0
    }

    /// Number of still-active participants.
    pub fn active(&self) -> usize {
        self.state.lock().active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..100 {
            assert!(b.wait());
        }
    }

    #[test]
    fn barrier_is_a_total_order_point() {
        // Classic check: each thread increments a counter before the barrier;
        // after the barrier every thread must observe the full count.
        const T: usize = 16;
        const ROUNDS: usize = 50;
        let barrier = Arc::new(SenseBarrier::new(T));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..T {
                let b = barrier.clone();
                let c = counter.clone();
                s.spawn(move || {
                    for round in 1..=ROUNDS {
                        c.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        assert_eq!(c.load(Ordering::SeqCst), (round * T) as u64);
                        b.wait(); // second barrier so nobody races ahead
                    }
                });
            }
        });
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        const T: usize = 8;
        let barrier = Arc::new(SenseBarrier::new(T));
        let leaders = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..T {
                let b = barrier.clone();
                let l = leaders.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        if b.wait() {
                            l.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 20);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = SenseBarrier::new(0);
    }

    #[test]
    fn retire_barrier_basic_sync() {
        const T: usize = 8;
        let barrier = Arc::new(RetireBarrier::new(T));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..T {
                let b = barrier.clone();
                let c = counter.clone();
                s.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    assert_eq!(c.load(Ordering::SeqCst), T as u64);
                    b.retire();
                });
            }
        });
        assert_eq!(barrier.active(), 0);
    }

    #[test]
    fn retired_lanes_do_not_block_later_phases() {
        // Half the lanes retire immediately (early kernel return); the rest
        // must still complete several barrier phases.
        const T: usize = 6;
        let barrier = Arc::new(RetireBarrier::new(T));
        std::thread::scope(|s| {
            for i in 0..T {
                let b = barrier.clone();
                s.spawn(move || {
                    if i % 2 == 0 {
                        b.retire();
                        return;
                    }
                    for _ in 0..10 {
                        b.wait();
                    }
                    b.retire();
                });
            }
        });
        assert_eq!(barrier.active(), 0);
    }

    #[test]
    fn retiring_last_lane_completes_phase() {
        let barrier = Arc::new(RetireBarrier::new(2));
        let b2 = barrier.clone();
        let waiter = std::thread::spawn(move || {
            b2.wait(); // blocks until the other lane retires
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        barrier.retire();
        waiter.join().unwrap();
    }
}
