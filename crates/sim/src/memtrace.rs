//! Memory-access tracing: the replay data plane for `ompx-analyzer`.
//!
//! While a [`MemTrace`] is attached to a [`crate::device::Device`], every
//! counted global- and shared-memory access made by every simulated thread
//! is recorded as a [`MemEvent`]. The static verifier's *replay validation*
//! mode drives a kernel on a small concrete grid with a trace attached and
//! then checks that its declared access summary predicts every observed
//! event — the mechanism by which hand-written summaries are validated
//! rather than trusted (see `crates/analyzer`).
//!
//! Each event also carries its *barrier context*: the launch sequence
//! number (several launches of the same kernel share one trace) and the
//! number of block barriers the accessing thread had executed when the
//! access happened. Barrier executions themselves are recorded as
//! [`BarrierEvent`]s. Together these let the analyzer validate barrier
//! *ordering* — which phase ran between which barriers — and let summary
//! extraction reconstruct barrier-delimited phases from a raw trace.
//!
//! The hook mirrors the sanitizer attachment pattern ([`crate::san`]): the
//! trace lives on the device, each launch wraps it in a [`LaunchMemTrace`]
//! carrying the kernel name, and [`crate::thread::ThreadCtx`] records into
//! it from the same accessor methods the sanitizer observes. Local-memory
//! accesses (`lread`/`lwrite`) are *not* traced: local arrays are private
//! to one thread and cannot race or go out of bounds at the buffer level.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Which address space an event touched.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device global memory: the allocation's id and diagnostic label.
    Global { alloc_id: usize, label: String },
    /// Block shared memory: the launch-config slot index.
    Shared { slot: usize },
}

/// How the access touched memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAccessKind {
    Read,
    Write,
    Atomic,
}

/// One recorded memory access by one simulated thread.
#[derive(Debug, Clone)]
pub struct MemEvent {
    /// Kernel the access executed in.
    pub kernel: String,
    /// Sequence number of the launch within the trace (several launches of
    /// the same kernel may share one attached trace).
    pub launch: u64,
    /// Block coordinates of the accessing thread.
    pub block: (u32, u32, u32),
    /// Thread coordinates within the block.
    pub thread: (u32, u32, u32),
    /// Address space and target.
    pub space: MemSpace,
    /// Element index within the buffer or slot.
    pub index: usize,
    /// Read, write, or atomic.
    pub kind: MemAccessKind,
    /// Block barriers the accessing thread had executed before this access
    /// — the access's barrier-delimited segment within its launch.
    pub phase: u32,
}

/// One block-barrier execution by one simulated thread.
#[derive(Debug, Clone)]
pub struct BarrierEvent {
    /// Kernel the barrier executed in.
    pub kernel: String,
    /// Sequence number of the launch within the trace.
    pub launch: u64,
    /// Block coordinates of the thread.
    pub block: (u32, u32, u32),
    /// Thread coordinates within the block.
    pub thread: (u32, u32, u32),
    /// Zero-based ordinal of this barrier for this thread within the
    /// launch (how many barriers the thread had executed before it).
    pub ordinal: u32,
}

/// Cap on recorded events, bounding a runaway kernel's trace. Replay runs
/// use deliberately tiny grids, so hitting the cap means the harness is
/// misconfigured; [`MemTrace::truncated`] exposes the condition.
const MAX_EVENTS: usize = 4_000_000;

/// A device-attached memory-access trace (see [`crate::device::Device`]'s
/// `attach_mem_trace`).
pub struct MemTrace {
    events: Mutex<Vec<MemEvent>>,
    barriers: Mutex<Vec<BarrierEvent>>,
    truncated: AtomicBool,
    launches: AtomicU64,
}

impl MemTrace {
    /// Fresh, empty trace.
    pub fn new() -> Arc<MemTrace> {
        Arc::new(MemTrace {
            events: Mutex::new(Vec::new()),
            barriers: Mutex::new(Vec::new()),
            truncated: AtomicBool::new(false),
            launches: AtomicU64::new(0),
        })
    }

    /// Copy of the events recorded so far. Per-lane streams are merged in
    /// canonical (block-rank, thread-rank, program-order) order as each
    /// launch completes, so the trace is byte-stable across runs and
    /// worker counts.
    pub fn events(&self) -> Vec<MemEvent> {
        self.events.lock().clone()
    }

    /// Copy of the barrier executions recorded so far.
    pub fn barrier_events(&self) -> Vec<BarrierEvent> {
        self.barriers.lock().clone()
    }

    /// Move the memory events out, leaving the trace empty. Barrier events
    /// are cleared too: a consumer draining a launch must not leak that
    /// launch's stale barrier context into the next analysis.
    pub fn drain(&self) -> Vec<MemEvent> {
        let events = std::mem::take(&mut *self.events.lock());
        self.barriers.lock().clear();
        events
    }

    /// Move both event streams out, leaving the trace empty.
    pub fn take_events(&self) -> (Vec<MemEvent>, Vec<BarrierEvent>) {
        (std::mem::take(&mut *self.events.lock()), std::mem::take(&mut *self.barriers.lock()))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// True when the event cap was hit and events were dropped.
    pub fn truncated(&self) -> bool {
        self.truncated.load(Ordering::Relaxed)
    }

    fn record(&self, event: MemEvent) {
        let mut events = self.events.lock();
        if events.len() < MAX_EVENTS {
            events.push(event);
        } else {
            self.truncated.store(true, Ordering::Relaxed);
        }
    }

    fn record_barrier(&self, event: BarrierEvent) {
        let mut barriers = self.barriers.lock();
        if barriers.len() < MAX_EVENTS {
            barriers.push(event);
        } else {
            self.truncated.store(true, Ordering::Relaxed);
        }
    }
}

/// A lane-local trace buffer. [`crate::thread::ThreadCtx`] records into it
/// in program order with no locking; the executor stages each lane's buffer
/// when the lane finishes, and [`LaunchMemTrace::finish`] merges all staged
/// buffers into the shared trace in canonical (block-rank, thread-rank)
/// order — so the trace bytes are identical run to run no matter how the
/// OS interleaves the lanes.
///
/// Events are buffered with empty `kernel` / zero `launch` fields; the
/// merge stamps the launch identity once, avoiding a per-event string clone
/// on the hot path.
#[derive(Debug, Default)]
pub(crate) struct TraceLog {
    events: Vec<MemEvent>,
    barriers: Vec<BarrierEvent>,
    truncated: bool,
}

impl TraceLog {
    pub(crate) fn push_event(&mut self, event: MemEvent) {
        if self.events.len() < MAX_EVENTS {
            self.events.push(event);
        } else {
            self.truncated = true;
        }
    }

    pub(crate) fn push_barrier(&mut self, event: BarrierEvent) {
        if self.barriers.len() < MAX_EVENTS {
            self.barriers.push(event);
        } else {
            self.truncated = true;
        }
    }

    fn is_empty(&self) -> bool {
        self.events.is_empty() && self.barriers.is_empty() && !self.truncated
    }
}

/// One lane's trace buffer staged for the canonical launch-end merge.
struct StagedLane {
    block_rank: usize,
    thread_rank: usize,
    log: TraceLog,
}

/// Per-launch trace context handed to the executor: the trace, the
/// kernel's name, the launch's sequence number, and the staged per-lane
/// buffers awaiting the canonical merge.
pub struct LaunchMemTrace {
    trace: Arc<MemTrace>,
    kernel: String,
    launch: u64,
    staged: Mutex<Vec<StagedLane>>,
}

impl LaunchMemTrace {
    pub(crate) fn new(trace: Arc<MemTrace>, kernel: &str) -> LaunchMemTrace {
        let launch = trace.launches.fetch_add(1, Ordering::Relaxed);
        LaunchMemTrace { trace, kernel: kernel.to_string(), launch, staged: Mutex::new(Vec::new()) }
    }

    /// Stage a finished lane's buffer for the launch-end merge. Called once
    /// per lane (including when the lane is unwound by a panic, so partial
    /// traces survive).
    pub(crate) fn stage_lane(&self, block_rank: usize, thread_rank: usize, log: &mut TraceLog) {
        if log.is_empty() {
            return;
        }
        let log = std::mem::take(log);
        self.staged.lock().push(StagedLane { block_rank, thread_rank, log });
    }

    /// Merge every staged lane into the shared trace in canonical
    /// (block-rank, thread-rank) order, stamping the launch identity.
    /// Called exactly once by the executor after all workers have stopped.
    pub(crate) fn finish(&self) {
        let mut staged = std::mem::take(&mut *self.staged.lock());
        staged.sort_by_key(|s| (s.block_rank, s.thread_rank));
        for lane in staged {
            if lane.log.truncated {
                self.trace.truncated.store(true, Ordering::Relaxed);
            }
            for mut e in lane.log.events {
                e.kernel = self.kernel.clone();
                e.launch = self.launch;
                self.trace.record(e);
            }
            for mut b in lane.log.barriers {
                b.kernel = self.kernel.clone();
                b.launch = self.launch;
                self.trace.record_barrier(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceProfile};
    use crate::dim::LaunchConfig;
    use crate::exec::Kernel;
    use crate::thread::ThreadCtx;

    #[test]
    fn trace_records_global_reads_and_writes() {
        let d = Device::new(DeviceProfile::test_small());
        let a = d.alloc_from(&[1.0f32, 2.0, 3.0, 4.0]);
        let b = d.alloc::<f32>(4);
        let trace = MemTrace::new();
        d.attach_mem_trace(Arc::clone(&trace));
        let k = Kernel::new("copy", {
            let (a, b) = (a.clone(), b.clone());
            move |tc: &mut ThreadCtx| {
                let i = tc.global_thread_id_x();
                let v = tc.read(&a, i);
                tc.write(&b, i, v);
            }
        });
        d.launch(&k, LaunchConfig::linear(4, 2)).unwrap();
        d.detach_mem_trace();
        let events = trace.events();
        assert_eq!(events.len(), 8);
        let reads = events.iter().filter(|e| e.kind == MemAccessKind::Read).count();
        let writes = events.iter().filter(|e| e.kind == MemAccessKind::Write).count();
        assert_eq!((reads, writes), (4, 4));
        assert!(events.iter().all(|e| e.kernel == "copy"));
        // A barrier-free kernel records every access in segment 0 of launch 0.
        assert!(events.iter().all(|e| e.phase == 0 && e.launch == 0));
        assert!(trace.barrier_events().is_empty());
        assert!(events
            .iter()
            .all(|e| matches!(e.space, MemSpace::Global { alloc_id, .. } if alloc_id == a.alloc_id() || alloc_id == b.alloc_id())));
    }

    #[test]
    fn trace_records_shared_accesses_with_slot() {
        let d = Device::new(DeviceProfile::test_small());
        let trace = MemTrace::new();
        d.attach_mem_trace(Arc::clone(&trace));
        let mut cfg = LaunchConfig::new(1u32, 4u32);
        let slot = cfg.shared_array::<u32>(4);
        let k = Kernel::with_flags(
            "stage",
            crate::exec::KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            move |tc: &mut ThreadCtx| {
                let tile = tc.shared::<u32>(slot);
                let t = tc.thread_rank();
                tc.swrite(&tile, t, t as u32);
                tc.sync_threads();
                let _ = tc.sread(&tile, (t + 1) % 4);
            },
        );
        d.launch(&k, cfg).unwrap();
        d.detach_mem_trace();
        let events = trace.events();
        assert_eq!(events.len(), 8);
        assert!(events.iter().all(|e| e.space == MemSpace::Shared { slot }));
        // Writes happened before the barrier (segment 0), reads after
        // (segment 1) — the phase counter separates them.
        assert!(events.iter().all(|e| e.phase == u32::from(e.kind == MemAccessKind::Read)));
        // One barrier execution per thread, all the thread's first.
        let barriers = trace.barrier_events();
        assert_eq!(barriers.len(), 4);
        assert!(barriers.iter().all(|b| b.ordinal == 0 && b.launch == 0));
    }

    #[test]
    fn launch_ids_separate_back_to_back_launches() {
        let d = Device::new(DeviceProfile::test_small());
        let a = d.alloc::<u32>(4);
        let trace = MemTrace::new();
        d.attach_mem_trace(Arc::clone(&trace));
        let k = Kernel::new("w", {
            let a = a.clone();
            move |tc: &mut ThreadCtx| {
                let i = tc.global_thread_id_x();
                tc.write(&a, i, 1);
            }
        });
        d.launch(&k, LaunchConfig::linear(4, 2)).unwrap();
        d.launch(&k, LaunchConfig::linear(4, 2)).unwrap();
        d.detach_mem_trace();
        let launches: std::collections::BTreeSet<u64> =
            trace.events().iter().map(|e| e.launch).collect();
        assert_eq!(launches.len(), 2);
    }

    #[test]
    fn drain_clears_barrier_events_too() {
        let d = Device::new(DeviceProfile::test_small());
        let trace = MemTrace::new();
        d.attach_mem_trace(Arc::clone(&trace));
        let mut cfg = LaunchConfig::new(1u32, 4u32);
        let slot = cfg.shared_array::<u32>(4);
        let k = Kernel::with_flags(
            "stage",
            crate::exec::KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            move |tc: &mut ThreadCtx| {
                let tile = tc.shared::<u32>(slot);
                let t = tc.thread_rank();
                tc.swrite(&tile, t, t as u32);
                tc.sync_threads();
            },
        );
        d.launch(&k, cfg).unwrap();
        d.detach_mem_trace();
        assert!(!trace.barrier_events().is_empty());
        let drained = trace.drain();
        assert!(!drained.is_empty());
        // The drained launch's barrier context must not leak into the next
        // analysis.
        assert!(trace.barrier_events().is_empty());
        assert!(trace.is_empty());
    }

    #[test]
    fn take_events_moves_both_streams() {
        let trace = MemTrace::new();
        let launch = LaunchMemTrace::new(Arc::clone(&trace), "k");
        let mut log = TraceLog::default();
        log.push_event(MemEvent {
            kernel: String::new(),
            launch: 0,
            block: (0, 0, 0),
            thread: (0, 0, 0),
            space: MemSpace::Shared { slot: 0 },
            index: 0,
            kind: MemAccessKind::Write,
            phase: 0,
        });
        log.push_barrier(BarrierEvent {
            kernel: String::new(),
            launch: 0,
            block: (0, 0, 0),
            thread: (0, 0, 0),
            ordinal: 0,
        });
        launch.stage_lane(0, 0, &mut log);
        launch.finish();
        let (events, barriers) = trace.take_events();
        assert_eq!((events.len(), barriers.len()), (1, 1));
        assert!(events.iter().all(|e| e.kernel == "k"));
        assert!(barriers.iter().all(|b| b.kernel == "k"));
        assert!(trace.is_empty());
        assert!(trace.barrier_events().is_empty());
    }

    #[test]
    fn detached_launches_record_nothing() {
        let d = Device::new(DeviceProfile::test_small());
        let a = d.alloc::<u32>(4);
        let trace = MemTrace::new();
        d.attach_mem_trace(Arc::clone(&trace));
        d.detach_mem_trace();
        let k = Kernel::new("w", {
            let a = a.clone();
            move |tc: &mut ThreadCtx| {
                let i = tc.global_thread_id_x();
                tc.write(&a, i, 1);
            }
        });
        d.launch(&k, LaunchConfig::linear(4, 2)).unwrap();
        assert!(trace.is_empty());
        assert!(!trace.truncated());
    }
}
