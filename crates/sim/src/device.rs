//! Simulated GPU devices and their hardware profiles.
//!
//! The paper's evaluation machines (Figure 7) are an NVIDIA A100 (40 GB) and
//! an AMD MI250; [`DeviceProfile::a100`] and [`DeviceProfile::mi250`] encode
//! their published micro-architectural parameters. The profile drives both
//! *functional* differences (warp width 32 vs 64, limits validated at launch)
//! and the *timing model* (SM count, clock, bandwidth, register file,
//! occupancy limits — see [`crate::timing`]).

use crate::counters::StatsSnapshot;
use crate::dim::LaunchConfig;
use crate::error::{SimError, SimResult};
use crate::exec::{self, Kernel};
use crate::fault::{FaultKind, FaultSite, FaultState, Injected, RetryPolicy};
use crate::mem::{BufImage, CheckpointTarget, DBuf, DeviceScalar};
use crate::memtrace::{LaunchMemTrace, MemTrace};
use crate::san::{LaunchSan, SanState};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// GPU vendor, used by the paper's §3.6 wrapper layer to pick the matching
/// "vendor library" implementation at launch-target resolution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    Nvidia,
    Amd,
    /// Small synthetic device used by unit tests.
    Generic,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vendor::Nvidia => write!(f, "NVIDIA"),
            Vendor::Amd => write!(f, "AMD"),
            Vendor::Generic => write!(f, "Generic"),
        }
    }
}

/// Micro-architectural description of a simulated GPU.
///
/// Field names use NVIDIA vocabulary ("SM", "warp") for uniformity; on the
/// AMD profile an SM is a Compute Unit and a warp is a 64-lane wavefront.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    pub name: String,
    pub vendor: Vendor,
    /// Streaming multiprocessors / compute units.
    pub sm_count: u32,
    /// Warp (NVIDIA) or wavefront (AMD) width.
    pub warp_size: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Global-memory bandwidth in bytes/second.
    pub mem_bw_bytes_per_s: f64,
    /// Average global-memory latency in core cycles.
    pub mem_latency_cycles: f64,
    /// Peak FP32 throughput in FLOP/s.
    pub fp32_flops: f64,
    /// Peak FP64 throughput in FLOP/s.
    pub fp64_flops: f64,
    /// Peak integer-op throughput in ops/s.
    pub int_ops_per_s: f64,
    /// Shared-memory accesses per second (all SMs).
    pub shared_ops_per_s: f64,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: usize,
    /// Shared-memory limit for a single block in bytes.
    pub max_smem_per_block: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: usize,
    /// Base kernel-launch latency in seconds (native kernel language).
    pub base_launch_latency_s: f64,
    /// Cost of one block-wide barrier in core cycles.
    pub barrier_cycles: f64,
    /// Global atomic throughput in ops/s.
    pub atomic_ops_per_s: f64,
    /// Instruction-cache-friendly binary size in bytes; kernels larger than
    /// this pay an i-cache penalty (see SU3 analysis in the paper, §4.2.3).
    pub icache_bytes: usize,
    /// Host-device interconnect bandwidth in bytes/second (PCIe 4.0 x16 on
    /// both of the paper's systems).
    pub pcie_bw_bytes_per_s: f64,
    /// Base latency of one host-device transfer in seconds.
    pub pcie_latency_s: f64,
}

impl DeviceProfile {
    /// NVIDIA A100-SXM4-40GB (Ampere GA100), per the paper's Figure 7 and
    /// NVIDIA's published specifications.
    pub fn a100() -> Self {
        DeviceProfile {
            name: "NVIDIA A100 (40 GB)".to_string(),
            vendor: Vendor::Nvidia,
            sm_count: 108,
            warp_size: 32,
            clock_ghz: 1.41,
            mem_bw_bytes_per_s: 1.555e12,
            mem_latency_cycles: 470.0,
            fp32_flops: 19.5e12,
            fp64_flops: 9.7e12,
            int_ops_per_s: 19.5e12,
            // 32 lanes/SM/cycle ideal; ~30 achieved with occasional bank
            // conflicts.
            shared_ops_per_s: 30.0 * 108.0 * 1.41e9,
            regs_per_sm: 65536,
            smem_per_sm: 164 * 1024,
            max_smem_per_block: 163 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            global_mem_bytes: 40 * (1 << 30),
            base_launch_latency_s: 2.0e-6,
            barrier_cycles: 12.0,
            atomic_ops_per_s: 2.0e10,
            icache_bytes: 16 * 1024,
            pcie_bw_bytes_per_s: 26.0e9,
            pcie_latency_s: 8.0e-6,
        }
    }

    /// AMD MI250, one Graphics Compute Die (CDNA2), per the paper's Figure 7
    /// and AMD's published specifications. ROCm exposes each GCD as its own
    /// device, which is how HeCBench runs it.
    pub fn mi250() -> Self {
        DeviceProfile {
            name: "AMD MI250 (GCD)".to_string(),
            vendor: Vendor::Amd,
            sm_count: 104,
            warp_size: 64,
            clock_ghz: 1.7,
            mem_bw_bytes_per_s: 1.6384e12,
            mem_latency_cycles: 600.0,
            fp32_flops: 22.6e12,
            fp64_flops: 22.6e12,
            int_ops_per_s: 22.6e12,
            shared_ops_per_s: 64.0 * 104.0 * 1.7e9,
            regs_per_sm: 2 * 65536,
            smem_per_sm: 64 * 1024,
            max_smem_per_block: 64 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            global_mem_bytes: 64 * (1 << 30),
            base_launch_latency_s: 3.0e-6,
            barrier_cycles: 15.0,
            atomic_ops_per_s: 1.5e10,
            icache_bytes: 32 * 1024,
            pcie_bw_bytes_per_s: 26.0e9,
            pcie_latency_s: 9.0e-6,
        }
    }

    /// A tiny synthetic device for fast, deterministic unit tests:
    /// 4-lane warps keep warp-collective tests small.
    pub fn test_small() -> Self {
        DeviceProfile {
            name: "TestGPU".to_string(),
            vendor: Vendor::Generic,
            sm_count: 4,
            warp_size: 4,
            clock_ghz: 1.0,
            mem_bw_bytes_per_s: 1.0e11,
            mem_latency_cycles: 100.0,
            fp32_flops: 1.0e12,
            fp64_flops: 0.5e12,
            int_ops_per_s: 1.0e12,
            shared_ops_per_s: 4.0 * 4.0 * 1.0e9,
            regs_per_sm: 4096,
            smem_per_sm: 16 * 1024,
            max_smem_per_block: 16 * 1024,
            max_threads_per_sm: 256,
            max_blocks_per_sm: 8,
            max_threads_per_block: 128,
            global_mem_bytes: 256 << 20,
            base_launch_latency_s: 1.0e-6,
            barrier_cycles: 20.0,
            atomic_ops_per_s: 1.0e9,
            icache_bytes: 8 * 1024,
            pcie_bw_bytes_per_s: 8.0e9,
            pcie_latency_s: 5.0e-6,
        }
    }

    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// Modeled wall time of one host-device transfer of `bytes`
    /// (the explicit `cudaMemcpy` / `omp_target_memcpy` / `map` clause
    /// cost of the paper's §2.6).
    pub fn transfer_seconds(&self, bytes: usize) -> f64 {
        self.pcie_latency_s + bytes as f64 / self.pcie_bw_bytes_per_s
    }
}

pub(crate) struct DeviceInner {
    pub profile: DeviceProfile,
    pub id: usize,
    allocated: AtomicUsize,
    pub(crate) streams: Mutex<Vec<Weak<crate::stream::StreamInner>>>,
    trace: crate::trace::Trace,
    trace_enabled: std::sync::atomic::AtomicBool,
    /// Attached sanitizer session, if any. All launches and allocations on
    /// this device report into it while attached.
    sanitizer: Mutex<Option<Arc<SanState>>>,
    /// Attached memory-access trace, if any. All launches on this device
    /// record their counted memory accesses into it while attached (the
    /// analyzer's replay-validation hook).
    mem_trace: Mutex<Option<Arc<MemTrace>>>,
    /// Attached fault-injection state, if any. While attached, allocation,
    /// memcpy, launch and stream-synchronize paths roll it before doing
    /// real work.
    faults: Mutex<Option<Arc<FaultState>>>,
    /// Last error recorded on this device (CUDA's `cudaGetLastError`
    /// model; sticky errors persist across reads).
    last_error: Mutex<Option<SimError>>,
    /// Retry policy the infallible wrappers and language runtimes use for
    /// transient faults on this device.
    retry: Mutex<RetryPolicy>,
    /// Every live allocation, registered at alloc time so a watchdog
    /// checkpoint can find the buffers to snapshot. Weak handles: the
    /// registry must not keep dropped buffers alive. Registration is O(1)
    /// bookkeeping — no snapshot is taken until a watchdog actually fires,
    /// which is what keeps the fault-free baseline bit-identical.
    allocs: Mutex<Vec<Weak<dyn CheckpointTarget>>>,
    /// Per-kernel write-set hints: the diagnostic labels of buffers the
    /// kernel may write, sourced from analyzer access summaries. Kernels
    /// without a hint fall back to whole-buffer snapshots.
    write_sets: Mutex<HashMap<String, Vec<String>>>,
    /// Pre-launch checkpoints keyed by kernel name, taken when a watchdog
    /// injection fires (before the partial block prefix commits) and
    /// consumed by [`Device::restore_checkpoint`].
    checkpoints: Mutex<HashMap<String, Checkpoint>>,
    /// Per-device worker-thread override for the executor (0 = unset; fall
    /// back to [`exec::default_workers`]). `1` is the reference serial
    /// mode; results are bit-identical at any setting.
    sim_workers: AtomicUsize,
}

/// One kernel's pre-launch snapshot: the saved image of every buffer the
/// watchdog checkpoint covered, alongside the (weak) buffer it restores to.
type Checkpoint = Vec<(Weak<dyn CheckpointTarget>, BufImage)>;

static NEXT_DEVICE_ID: AtomicUsize = AtomicUsize::new(0);

/// A handle to a simulated GPU. Cheap to clone (shared inner state), like a
/// CUDA device ordinal plus its context.
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

impl Device {
    /// Bring up a device with the given hardware profile.
    pub fn new(profile: DeviceProfile) -> Self {
        Device {
            inner: Arc::new(DeviceInner {
                profile,
                id: NEXT_DEVICE_ID.fetch_add(1, Ordering::Relaxed),
                allocated: AtomicUsize::new(0),
                streams: Mutex::new(Vec::new()),
                trace: crate::trace::Trace::new(),
                trace_enabled: std::sync::atomic::AtomicBool::new(false),
                sanitizer: Mutex::new(None),
                mem_trace: Mutex::new(None),
                faults: Mutex::new(None),
                last_error: Mutex::new(None),
                retry: Mutex::new(RetryPolicy::default()),
                allocs: Mutex::new(Vec::new()),
                write_sets: Mutex::new(HashMap::new()),
                checkpoints: Mutex::new(HashMap::new()),
                sim_workers: AtomicUsize::new(0),
            }),
        }
    }

    /// Set (or with `None`, clear) this device's executor worker-thread
    /// count. `Some(1)` selects the reference serial mode. Unset devices
    /// resolve through [`exec::default_workers`]: the process-global
    /// override, then `OMPX_SIM_WORKERS`, then the host's parallelism.
    pub fn set_sim_workers(&self, workers: Option<usize>) {
        self.inner.sim_workers.store(workers.map_or(0, |w| w.max(1)), Ordering::Relaxed);
    }

    /// The worker-thread count the next launch on this device will use.
    pub fn sim_workers(&self) -> usize {
        match self.inner.sim_workers.load(Ordering::Relaxed) {
            0 => exec::default_workers(),
            n => n,
        }
    }

    /// Attach a sanitizer session: subsequent launches and allocations on
    /// this device report into `state` until [`Device::detach_sanitizer`].
    /// Replaces any previously attached session.
    pub fn attach_sanitizer(&self, state: Arc<SanState>) {
        *self.inner.sanitizer.lock() = Some(state);
    }

    /// Detach the sanitizer session, returning it (with its findings).
    pub fn detach_sanitizer(&self) -> Option<Arc<SanState>> {
        self.inner.sanitizer.lock().take()
    }

    /// The currently attached sanitizer session, if any.
    pub fn sanitizer(&self) -> Option<Arc<SanState>> {
        self.inner.sanitizer.lock().clone()
    }

    /// Attach a memory-access trace: subsequent launches record every
    /// counted global/shared access into `trace` until
    /// [`Device::detach_mem_trace`]. Replaces any previously attached trace.
    pub fn attach_mem_trace(&self, trace: Arc<MemTrace>) {
        *self.inner.mem_trace.lock() = Some(trace);
    }

    /// Detach the memory-access trace, returning it (with its events).
    pub fn detach_mem_trace(&self) -> Option<Arc<MemTrace>> {
        self.inner.mem_trace.lock().take()
    }

    /// The currently attached memory-access trace, if any.
    pub fn mem_trace(&self) -> Option<Arc<MemTrace>> {
        self.inner.mem_trace.lock().clone()
    }

    /// Attach a fault-injection state: subsequent allocations, memcpys,
    /// launches and stream synchronizations on this device roll it until
    /// [`Device::detach_faults`]. Replaces any previously attached state.
    pub fn attach_faults(&self, state: Arc<FaultState>) {
        *self.inner.faults.lock() = Some(state);
    }

    /// Detach the fault-injection state, returning it (with its records).
    pub fn detach_faults(&self) -> Option<Arc<FaultState>> {
        self.inner.faults.lock().take()
    }

    /// The currently attached fault-injection state, if any.
    pub fn faults(&self) -> Option<Arc<FaultState>> {
        self.inner.faults.lock().clone()
    }

    /// True once an attached plan's device loss has fired.
    pub fn is_lost(&self) -> bool {
        self.faults().is_some_and(|f| f.device_lost())
    }

    /// Retry policy used for transient faults on this device.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.inner.retry.lock()
    }

    /// Replace the device's retry policy.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.inner.retry.lock() = policy;
    }

    /// Record `e` as the device's last error (`cudaGetLastError` model).
    /// An already-recorded sticky error (device loss) is never overwritten.
    pub fn record_error(&self, e: SimError) {
        let mut slot = self.inner.last_error.lock();
        if slot.as_ref().is_some_and(SimError::is_sticky) {
            return;
        }
        *slot = Some(e);
    }

    /// `cudaPeekAtLastError`: the last recorded error, without clearing it.
    pub fn peek_last_error(&self) -> Option<SimError> {
        self.inner.last_error.lock().clone()
    }

    /// `cudaGetLastError`: the last recorded error, clearing it — unless it
    /// is sticky (device loss), in which case it persists until
    /// [`Device::reset`].
    pub fn take_last_error(&self) -> Option<SimError> {
        let mut slot = self.inner.last_error.lock();
        if slot.as_ref().is_some_and(SimError::is_sticky) {
            return slot.clone();
        }
        slot.take()
    }

    /// Roll the attached fault state at `site`, if any.
    fn roll(&self, site: FaultSite) -> Option<Injected> {
        self.faults().and_then(|f| f.roll(site))
    }

    /// Stream-synchronize injection decision (called by
    /// [`crate::stream::Stream::try_synchronize`]).
    pub(crate) fn roll_stream_fault(&self, stream_id: u64) -> Option<SimError> {
        self.roll(FaultSite::StreamSync).map(|inj| match inj.kind {
            FaultKind::DeviceLost => SimError::DeviceLost { device: self.inner.id },
            _ => SimError::StreamFault { stream: stream_id },
        })
    }

    /// The device's hardware profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.inner.profile
    }

    /// Process-unique device id.
    pub fn id(&self) -> usize {
        self.inner.id
    }

    /// Bytes of device memory currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.inner.allocated.load(Ordering::Relaxed)
    }

    /// Allocate a zero-initialized buffer of `n` elements, or report memory
    /// exhaustion (`cudaMalloc` returning `cudaErrorMemoryAllocation`) or
    /// an injected allocation fault.
    pub fn try_alloc<T: DeviceScalar>(&self, n: usize) -> SimResult<DBuf<T>> {
        let bytes = n * std::mem::size_of::<T>();
        if let Some(inj) = self.roll(FaultSite::Alloc) {
            return Err(match inj.kind {
                FaultKind::DeviceLost => SimError::DeviceLost { device: self.inner.id },
                _ => SimError::OutOfDeviceMemory { requested: bytes, available: 0 },
            });
        }
        self.alloc_capacity_checked(n)
    }

    /// The fault-blind allocation path: capacity check plus accounting.
    fn alloc_capacity_checked<T: DeviceScalar>(&self, n: usize) -> SimResult<DBuf<T>> {
        let bytes = n * std::mem::size_of::<T>();
        let cap = self.inner.profile.global_mem_bytes;
        let prev = self.inner.allocated.fetch_add(bytes, Ordering::Relaxed);
        if prev + bytes > cap {
            self.inner.allocated.fetch_sub(bytes, Ordering::Relaxed);
            return Err(SimError::OutOfDeviceMemory {
                requested: bytes,
                available: cap - prev.min(cap),
            });
        }
        let buf = DBuf::new_zeroed(n, self.inner.id);
        self.register_alloc(&buf);
        Ok(buf)
    }

    /// Allocate a zero-initialized buffer of `n` elements. Injected faults
    /// are retried under the device's [`RetryPolicy`]; if the retries are
    /// exhausted the allocation bypasses injection and completes anyway
    /// (the error stays recorded as sticky device state), so the
    /// infallible API never fails the program over an *injected* fault.
    /// Genuine exhaustion of the modeled device memory still panics.
    pub fn alloc<T: DeviceScalar>(&self, n: usize) -> DBuf<T> {
        let policy = self.retry_policy();
        match crate::fault::run_with_retry(self, &policy, "alloc", || self.try_alloc(n)) {
            Ok(buf) => buf,
            Err(e) => match self.alloc_capacity_checked(n) {
                Ok(buf) => {
                    if let Some(f) = self.faults() {
                        f.note_degraded(&format!("alloc of {n} elements: {e}"));
                    }
                    buf
                }
                Err(real) => panic!("device allocation failed: {real}"),
            },
        }
    }

    /// Roll (and, under the retry policy, re-roll) the allocation fault
    /// site for an infallible allocation path that has no capacity check.
    /// Exhausted retries degrade to an unchecked allocation.
    fn alloc_gate(&self, what: &str, bytes: usize) {
        if self.faults().is_none() {
            return;
        }
        let policy = self.retry_policy();
        let rolled = crate::fault::run_with_retry(self, &policy, what, || {
            match self.roll(FaultSite::Alloc) {
                Some(inj) => Err(match inj.kind {
                    FaultKind::DeviceLost => SimError::DeviceLost { device: self.inner.id },
                    _ => SimError::OutOfDeviceMemory { requested: bytes, available: 0 },
                }),
                None => Ok(()),
            }
        });
        if let Err(e) = rolled {
            if let Some(f) = self.faults() {
                f.note_degraded(&format!("{what}: {e}"));
            }
        }
    }

    /// Allocate like [`Device::alloc`] but with a diagnostic label — the
    /// sanitizer's "allocation backtrace" handle, named after the variable
    /// or array the buffer stands for.
    pub fn alloc_labeled<T: DeviceScalar>(&self, n: usize, label: &str) -> DBuf<T> {
        let buf = self.alloc(n);
        buf.set_label(label);
        if let Some(san) = &*self.inner.sanitizer.lock() {
            san.relabel_alloc(buf.alloc_id(), label);
        }
        buf
    }

    /// Allocate `n` elements of *uninitialized* device memory — the
    /// `cudaMalloc` contract, unlike [`Device::alloc`] which models
    /// `cudaCalloc`-style zeroed storage. Reads of elements never written
    /// are flagged by the sanitizer's initcheck tool (the storage is still
    /// physically zeroed, so the simulated program stays deterministic).
    pub fn alloc_uninit<T: DeviceScalar>(&self, n: usize) -> DBuf<T> {
        let bytes = n * std::mem::size_of::<T>();
        self.alloc_gate("alloc_uninit", bytes);
        self.inner.allocated.fetch_add(bytes, Ordering::Relaxed);
        let buf = DBuf::new_uninit(n, self.inner.id);
        self.register_alloc(&buf);
        buf
    }

    fn register_alloc<T: DeviceScalar>(&self, buf: &DBuf<T>) {
        self.inner.allocs.lock().push(Arc::downgrade(&buf.checkpoint_target()));
        if let Some(san) = &*self.inner.sanitizer.lock() {
            san.on_alloc(buf.alloc_id(), buf.label(), buf.size_bytes());
        }
    }

    /// Upload a constant-memory buffer (`cudaMemcpyToSymbol`).
    pub fn alloc_const<T: DeviceScalar>(&self, data: &[T]) -> crate::constant::CBuf<T> {
        self.inner.allocated.fetch_add(std::mem::size_of_val(data), Ordering::Relaxed);
        crate::constant::CBuf::from_slice(data, self.inner.id)
    }

    /// Allocate and fill from a host slice (`cudaMalloc` + `cudaMemcpy` H2D).
    pub fn alloc_from<T: DeviceScalar>(&self, data: &[T]) -> DBuf<T> {
        let bytes = std::mem::size_of_val(data);
        self.alloc_gate("alloc_from", bytes);
        self.inner.allocated.fetch_add(bytes, Ordering::Relaxed);
        let buf = DBuf::from_slice(data, self.inner.id);
        self.register_alloc(&buf);
        buf
    }

    /// Release the modeled capacity held by `buf` (`cudaFree`). The backing
    /// store itself is reference-counted, so late readers stay memory-safe;
    /// under the sanitizer's memcheck tool, device-side accesses through a
    /// stale handle are reported as use-after-free.
    pub fn free<T: DeviceScalar>(&self, buf: &DBuf<T>) {
        self.inner.allocated.fetch_sub(buf.size_bytes(), Ordering::Relaxed);
        buf.mark_freed();
        if let Some(san) = &*self.inner.sanitizer.lock() {
            san.on_free(buf.alloc_id());
        }
    }

    /// Tear down the device context (`cudaDeviceReset`): drain streams,
    /// forget modeled allocations, and — when a sanitizer session with
    /// leakcheck is attached — report every allocation still live. Like the
    /// hardware tool, implicit process-exit teardown is *not* a leak; only
    /// this explicit reset triggers the scan.
    pub fn reset(&self) {
        self.synchronize();
        if let Some(san) = &*self.inner.sanitizer.lock() {
            san.on_device_reset(&self.inner.profile.name);
        }
        self.inner.allocated.store(0, Ordering::Relaxed);
        *self.inner.last_error.lock() = None;
    }

    /// Fallible host-to-device copy (`cudaMemcpy` H2D): reports size
    /// mismatches as errors instead of panicking and is a fault-injection
    /// site. An injected corruption *does* move the data but bit-flips one
    /// deterministic element, so a retry re-copies and repairs it.
    pub fn try_memcpy_h2d<T: DeviceScalar>(&self, dst: &DBuf<T>, src: &[T]) -> SimResult<()> {
        if src.len() > dst.len() {
            return Err(SimError::SizeMismatch { src: src.len(), dst: dst.len() });
        }
        match self.roll(FaultSite::MemcpyH2D) {
            None => {
                dst.copy_from_host(src);
                Ok(())
            }
            Some(inj) => Err(self.memcpy_fault("H2D", std::mem::size_of_val(src), &inj, || {
                dst.copy_from_host(src);
                if !src.is_empty() {
                    let i = (inj.salt as usize) % src.len();
                    dst.set(i, T::from_word(dst.get(i).to_word() ^ 1));
                }
            })),
        }
    }

    /// Fallible device-to-host copy (`cudaMemcpy` D2H); see
    /// [`Device::try_memcpy_h2d`] for the injection semantics.
    pub fn try_memcpy_d2h<T: DeviceScalar>(&self, src: &DBuf<T>, dst: &mut [T]) -> SimResult<()> {
        if dst.len() > src.len() {
            return Err(SimError::SizeMismatch { src: src.len(), dst: dst.len() });
        }
        let bytes = std::mem::size_of_val(&*dst);
        match self.roll(FaultSite::MemcpyD2H) {
            None => {
                src.copy_to_host(dst);
                Ok(())
            }
            Some(inj) => Err(self.memcpy_fault("D2H", bytes, &inj, || {
                src.copy_to_host(dst);
                if !dst.is_empty() {
                    let i = (inj.salt as usize) % dst.len();
                    dst[i] = T::from_word(dst[i].to_word() ^ 1);
                }
            })),
        }
    }

    /// Fallible device-to-device copy (`cudaMemcpy` D2D); see
    /// [`Device::try_memcpy_h2d`] for the injection semantics.
    pub fn try_memcpy_d2d<T: DeviceScalar>(
        &self,
        dst: &DBuf<T>,
        src: &DBuf<T>,
        len: usize,
    ) -> SimResult<()> {
        if len > src.len() || len > dst.len() {
            return Err(SimError::SizeMismatch { src: src.len(), dst: dst.len() });
        }
        match self.roll(FaultSite::MemcpyD2D) {
            None => {
                dst.copy_from_device(src, len);
                Ok(())
            }
            Some(inj) => {
                Err(self.memcpy_fault("D2D", len * std::mem::size_of::<T>(), &inj, || {
                    dst.copy_from_device(src, len);
                    if len > 0 {
                        let i = (inj.salt as usize) % len;
                        dst.set(i, T::from_word(dst.get(i).to_word() ^ 1));
                    }
                }))
            }
        }
    }

    /// Map an injected transfer fault to its error, running `corrupt` for
    /// the corruption kind (which moves-then-damages the data).
    fn memcpy_fault(
        &self,
        dir: &'static str,
        bytes: usize,
        inj: &Injected,
        corrupt: impl FnOnce(),
    ) -> SimError {
        match inj.kind {
            FaultKind::DeviceLost => SimError::DeviceLost { device: self.inner.id },
            FaultKind::Ecc => SimError::EccTransient { op: format!("memcpy {dir}") },
            FaultKind::MemcpyCorrupt => {
                corrupt();
                SimError::MemcpyFault { dir, bytes, corrupted: true }
            }
            _ => SimError::MemcpyFault { dir, bytes, corrupted: false },
        }
    }

    /// Validate a launch configuration against the device limits.
    pub fn validate_launch(&self, cfg: &LaunchConfig) -> SimResult<()> {
        let p = &self.inner.profile;
        if cfg.grid.is_degenerate() || cfg.block.is_degenerate() {
            return Err(SimError::InvalidLaunch(format!(
                "degenerate geometry grid={:?} block={:?}",
                cfg.grid, cfg.block
            )));
        }
        let tpb = cfg.threads_per_block();
        if tpb > p.max_threads_per_block as usize {
            return Err(SimError::InvalidLaunch(format!(
                "{tpb} threads per block exceeds device limit {}",
                p.max_threads_per_block
            )));
        }
        let smem = cfg.shared_bytes_per_block();
        if smem > p.max_smem_per_block {
            return Err(SimError::SharedMemExceeded {
                requested: smem,
                limit: p.max_smem_per_block,
            });
        }
        Ok(())
    }

    /// Enable launch tracing (the simulator's `nsys`-style recorder).
    pub fn enable_tracing(&self) {
        self.inner.trace_enabled.store(true, Ordering::Release);
    }

    /// Disable launch tracing.
    pub fn disable_tracing(&self) {
        self.inner.trace_enabled.store(false, Ordering::Release);
    }

    /// The device's launch trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &crate::trace::Trace {
        &self.inner.trace
    }

    fn tracing(&self) -> bool {
        self.inner.trace_enabled.load(Ordering::Acquire)
    }

    /// Synchronously execute a kernel and return the aggregated event counts.
    ///
    /// This is the functional half of a launch; converting the counts into a
    /// modeled execution time is the job of [`crate::timing::model_kernel`]
    /// (done by the language runtimes, which know the codegen profile and
    /// execution mode).
    pub fn launch(&self, kernel: &Kernel, cfg: LaunchConfig) -> SimResult<StatsSnapshot> {
        self.validate_launch(&cfg)?;
        // Most launch injections fire *before* execution: a failed launch
        // has no side effects, so a retry or a host-path re-dispatch
        // observes exactly the memory state the failed attempt did. The
        // exception is the watchdog timeout, which kills the kernel
        // mid-run and leaves a committed block prefix behind — see
        // `watchdog_partial`.
        if let Some(inj) = self.roll(FaultSite::Launch) {
            if let Some(reg) = ompx_telemetry::active() {
                reg.counter_add("sim_launch_faults_total", &[("kind", inj.kind.label())], 1);
            }
            return Err(match inj.kind {
                FaultKind::DeviceLost => SimError::DeviceLost { device: self.inner.id },
                FaultKind::Watchdog => self.watchdog_partial(kernel, &cfg, &inj),
                FaultKind::Ecc => {
                    SimError::EccTransient { op: format!("launch of {}", kernel.name()) }
                }
                _ => SimError::LaunchFault { kernel: kernel.name().to_string() },
            });
        }
        self.launch_unchecked(kernel, cfg)
    }

    /// A watchdog timeout kills the kernel mid-run: checkpoint the
    /// kernel's write-set, execute (and commit) a deterministic prefix of
    /// the grid's blocks, and hand back the timeout error. The committed
    /// prefix `K = salt % num_blocks` is a pure function of the plan's
    /// `(seed, site, op)` — the same salt that drives every other fault
    /// decision — so reruns observe identical partial state. Sanitizer and
    /// memtrace hooks run for exactly the committed blocks.
    fn watchdog_partial(&self, kernel: &Kernel, cfg: &LaunchConfig, inj: &Injected) -> SimError {
        self.checkpoint_write_set(kernel.name());
        let committed = (inj.salt as usize) % cfg.num_blocks();
        if committed > 0 {
            let san = self.sanitizer().map(|state| LaunchSan::new(state, kernel.name()));
            let mem = self.mem_trace().map(|trace| LaunchMemTrace::new(trace, kernel.name()));
            let _ = exec::run_prefix(
                kernel,
                cfg,
                self.inner.profile.warp_size,
                san.as_ref(),
                mem.as_ref(),
                self.sim_workers(),
                committed,
            );
        }
        SimError::WatchdogTimeout { kernel: kernel.name().to_string() }
    }

    /// Install the write-set hint for `kernel`: the diagnostic labels of
    /// every buffer the kernel may write (analyzer access-summary data).
    /// With a hint installed, a watchdog checkpoint snapshots only those
    /// buffers (plus unlabeled allocations, which a label hint cannot
    /// exclude); without one it conservatively snapshots every live
    /// allocation on the device.
    pub fn set_kernel_write_set<S: AsRef<str>>(&self, kernel: &str, labels: &[S]) {
        let labels = labels.iter().map(|s| s.as_ref().to_string()).collect();
        self.inner.write_sets.lock().insert(kernel.to_string(), labels);
    }

    /// The installed write-set hint for `kernel`, if any.
    pub fn kernel_write_set(&self, kernel: &str) -> Option<Vec<String>> {
        self.inner.write_sets.lock().get(kernel).cloned()
    }

    /// True while a watchdog checkpoint for `kernel` is pending restore.
    pub fn has_checkpoint(&self, kernel: &str) -> bool {
        self.inner.checkpoints.lock().contains_key(kernel)
    }

    /// Restore the pre-launch checkpoint taken when a watchdog injection
    /// fired on `kernel`, erasing its partially committed block prefix.
    /// Consumes the checkpoint. Returns `false` (and restores nothing)
    /// when no checkpoint is pending — the case for every non-watchdog
    /// launch fault, which still fires before execution and leaves no
    /// side effects to undo.
    pub fn restore_checkpoint(&self, kernel: &str) -> bool {
        match self.inner.checkpoints.lock().remove(kernel) {
            Some(saved) => {
                for (weak, image) in &saved {
                    if let Some(target) = weak.upgrade() {
                        target.restore(image);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Snapshot the buffers `kernel` may write, ahead of a partial-commit
    /// watchdog failure. Only called once a watchdog injection has fired,
    /// so fault-free launches never pay for it.
    fn checkpoint_write_set(&self, kernel: &str) {
        let hint = self.kernel_write_set(kernel);
        let mut saved = Vec::new();
        let mut allocs = self.inner.allocs.lock();
        allocs.retain(|weak| weak.upgrade().is_some_and(|t| !t.target_freed()));
        for weak in allocs.iter() {
            let Some(target) = weak.upgrade() else { continue };
            let include = match (&hint, target.target_label()) {
                (Some(labels), Some(label)) => labels.contains(&label),
                // No hint, or an unlabeled buffer the hint cannot speak
                // for: snapshot conservatively.
                _ => true,
            };
            if include {
                saved.push((Weak::clone(weak), target.save()));
            }
        }
        drop(allocs);
        self.inner.checkpoints.lock().insert(kernel.to_string(), saved);
    }

    /// [`Device::launch`] minus the fault-injection roll: the re-dispatch
    /// path retries and host fallbacks go through, so a degraded execution
    /// still produces functionally correct results.
    pub fn launch_unchecked(&self, kernel: &Kernel, cfg: LaunchConfig) -> SimResult<StatsSnapshot> {
        self.validate_launch(&cfg)?;
        if let Some(reg) = ompx_telemetry::active() {
            reg.counter_add("sim_launches_total", &[], 1);
        }
        let san = self.sanitizer().map(|state| LaunchSan::new(state, kernel.name()));
        let mem = self.mem_trace().map(|trace| LaunchMemTrace::new(trace, kernel.name()));
        let stats = exec::run(
            kernel,
            &cfg,
            self.inner.profile.warp_size,
            san.as_ref(),
            mem.as_ref(),
            self.sim_workers(),
        );
        if self.tracing() {
            // Give the record a usable duration immediately: model the
            // launch's own stats with a default codegen profile and no
            // mode overheads. Language runtimes overwrite this with their
            // toolchain/mode-aware value via `Trace::attribute_model`.
            let modeled = crate::timing::model_kernel(
                &self.inner.profile,
                cfg.threads_per_block() as u32,
                cfg.num_blocks() as u64,
                cfg.shared_bytes_per_block(),
                &stats,
                &crate::timing::CodegenInfo::default(),
                &crate::timing::ModeOverheads::none(),
            );
            self.inner.trace.record(crate::trace::LaunchRecord {
                kernel: kernel.name().to_string(),
                grid: cfg.grid,
                block: cfg.block,
                stats,
                modeled_seconds: modeled.seconds,
                runtime_attributed: false,
            });
        }
        Ok(stats)
    }

    /// Utilization snapshots of every live stream created on this device,
    /// in creation order (the profiler's stream-overlap report).
    pub fn stream_stats(&self) -> Vec<crate::stream::StreamStats> {
        self.inner.streams.lock().iter().filter_map(Weak::upgrade).map(|s| s.stats()).collect()
    }

    /// Block until all streams created on this device have drained.
    pub fn synchronize(&self) {
        let streams: Vec<_> = self.inner.streams.lock().iter().filter_map(Weak::upgrade).collect();
        for s in streams {
            crate::stream::StreamInner::drain(&s);
        }
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Device#{} ({})", self.inner.id, self.inner.profile.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_sane_parameters() {
        for p in [DeviceProfile::a100(), DeviceProfile::mi250(), DeviceProfile::test_small()] {
            assert!(p.sm_count > 0);
            assert!(p.warp_size.is_power_of_two());
            assert!(p.mem_bw_bytes_per_s > 0.0);
            assert!(p.max_threads_per_block <= p.max_threads_per_sm);
            assert!(p.max_smem_per_block <= p.smem_per_sm);
        }
        assert_eq!(DeviceProfile::a100().warp_size, 32);
        assert_eq!(DeviceProfile::mi250().warp_size, 64);
    }

    #[test]
    fn allocation_accounting() {
        let dev = Device::new(DeviceProfile::test_small());
        assert_eq!(dev.allocated_bytes(), 0);
        let buf = dev.alloc::<f64>(100);
        assert_eq!(dev.allocated_bytes(), 800);
        dev.free(&buf);
        assert_eq!(dev.allocated_bytes(), 0);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let dev = Device::new(DeviceProfile::test_small());
        let cap = dev.profile().global_mem_bytes;
        let err = dev.try_alloc::<u32>(cap).unwrap_err(); // 4x capacity
        assert!(matches!(err, SimError::OutOfDeviceMemory { .. }));
        // The failed allocation must not leak accounting.
        assert_eq!(dev.allocated_bytes(), 0);
    }

    #[test]
    fn launch_validation_rejects_bad_configs() {
        let dev = Device::new(DeviceProfile::test_small());
        let k = Kernel::new("noop", |_ctx: &mut crate::thread::ThreadCtx| {});
        // too many threads per block
        let err = dev.launch(&k, LaunchConfig::new(1u32, 256u32)).unwrap_err();
        assert!(matches!(err, SimError::InvalidLaunch(_)));
        // zero-sized grid
        let err = dev.launch(&k, LaunchConfig::new([0u32, 1, 1], 32u32)).unwrap_err();
        assert!(matches!(err, SimError::InvalidLaunch(_)));
        // oversized shared memory
        let cfg = LaunchConfig::new(1u32, 32u32).with_dynamic_shared(1 << 20);
        let err = dev.launch(&k, cfg).unwrap_err();
        assert!(matches!(err, SimError::SharedMemExceeded { .. }));
    }

    #[test]
    fn device_ids_are_unique() {
        let a = Device::new(DeviceProfile::test_small());
        let b = Device::new(DeviceProfile::test_small());
        assert_ne!(a.id(), b.id());
    }
}
