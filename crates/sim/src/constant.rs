//! Constant memory: the fourth computational memory space of §2.5.
//!
//! CUDA's `__constant__` space is small, read-only during kernel execution,
//! cached, and *broadcast-optimized*: when every thread of a warp reads the
//! same address the constant cache serves the whole warp in one cycle.
//! OpenMP reaches the same storage through `declare target` globals (and
//! the allocator/`groupprivate` work the paper's footnote 2 describes).
//!
//! [`CBuf`] is immutable after upload, so it is plain shared data — no
//! atomics needed — and reads are charged to the dedicated constant-read
//! counter, which the timing model prices at near-register cost for
//! uniform access.

use crate::mem::DeviceScalar;
use std::sync::Arc;

/// A constant-memory buffer: written by the host before launch, read-only
/// on the device.
pub struct CBuf<T: DeviceScalar> {
    data: Arc<[T]>,
    device_id: usize,
}

impl<T: DeviceScalar> Clone for CBuf<T> {
    fn clone(&self) -> Self {
        CBuf { data: Arc::clone(&self.data), device_id: self.device_id }
    }
}

impl<T: DeviceScalar> CBuf<T> {
    pub(crate) fn from_slice(data: &[T], device_id: usize) -> Self {
        CBuf { data: data.into(), device_id }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of_val::<[T]>(&self.data)
    }

    /// Owning device.
    pub fn device_id(&self) -> usize {
        self.device_id
    }

    /// Uncounted host-side read.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.data[i]
    }

    /// The whole buffer as a host vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.data.to_vec()
    }
}

impl<T: DeviceScalar> std::fmt::Debug for CBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CBuf<{}>(len={}, dev={})",
            std::any::type_name::<T>(),
            self.len(),
            self.device_id
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_immutability() {
        let c = CBuf::from_slice(&[1.0f32, 2.0, 3.0], 0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), 2.0);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0]);
        assert_eq!(c.size_bytes(), 12);
        let c2 = c.clone();
        assert_eq!(c2.get(2), 3.0);
    }

    #[test]
    fn empty_buffer() {
        let c = CBuf::<u32>::from_slice(&[], 0);
        assert!(c.is_empty());
        assert_eq!(c.size_bytes(), 0);
    }
}
