//! # ompx-sim — a functional SIMT GPU simulator with an analytical timing model
//!
//! This crate is the hardware substrate for the Rust reproduction of
//! *"OpenMP Kernel Language Extensions for Performance Portable GPU Codes"*
//! (Tian, Scogland, Chapman, Doerfert — SC-W 2023). The paper evaluates its
//! OpenMP extensions on an NVIDIA A100 and an AMD MI250; neither OpenMP nor a
//! GPU exists in this environment, so every layer of that stack is rebuilt in
//! software:
//!
//! * **Functional execution** — kernels are plain Rust closures over a
//!   [`thread::ThreadCtx`]; the executor really runs every simulated GPU
//!   thread, including block-wide barriers (`sync_threads`), warp-level
//!   primitives (shuffle/ballot), shared memory, and global-memory atomics.
//!   Program outputs (checksums) are therefore *real*, and every program
//!   version in the evaluation must agree on them.
//! * **Analytical timing** — while executing, each simulated thread counts
//!   the events a GPU would charge for (FLOPs, global/shared memory traffic,
//!   barriers, atomics, divergent branches). The [`timing`] module converts
//!   those counts into a modeled execution time using a standard
//!   occupancy × roofline model parameterised by a [`device::DeviceProfile`]
//!   (A100, MI250) and a per-kernel codegen description
//!   ([`timing::CodegenInfo`]: registers, static shared memory, binary size).
//!   This is the mechanism through which the paper's performance deltas flow
//!   (occupancy limits, memory traffic added by variable globalization, the
//!   generic-mode state machine), so the reproduced *shape* of Figure 8 is
//!   mechanistic rather than hard-coded.
//!
//! The simulator is deliberately vendor-neutral: the CUDA-like and HIP-like
//! front ends (`ompx-klang`), the OpenMP device runtime (`ompx-devicert`),
//! the OpenMP host runtime (`ompx-hostrt`), and the paper's extensions
//! (`ompx`) all lower onto this one substrate.
//!
//! ## Quick tour
//!
//! ```
//! use ompx_sim::prelude::*;
//!
//! let dev = Device::new(DeviceProfile::a100());
//! let a = dev.alloc_from(&[1.0f32, 2.0, 3.0, 4.0]);
//! let b = dev.alloc::<f32>(4);
//!
//! let kernel = Kernel::new("scale", {
//!     let (a, b) = (a.clone(), b.clone());
//!     move |ctx: &mut ThreadCtx| {
//!         let i = ctx.global_thread_id_x();
//!         if i < a.len() {
//!             let v = ctx.read(&a, i);
//!             ctx.flops(1);
//!             ctx.write(&b, i, v * 2.0);
//!         }
//!     }
//! });
//!
//! let stats = dev.launch(&kernel, LaunchConfig::linear(4, 2)).unwrap();
//! assert_eq!(b.to_vec(), vec![2.0, 4.0, 6.0, 8.0]);
//! assert_eq!(stats.flops, 4);
//! ```

pub mod barrier;
pub mod constant;
pub mod counters;
pub mod device;
pub mod dim;
pub mod error;
pub mod exec;
pub mod fault;
pub mod mem;
pub mod memtrace;
pub mod san;
pub mod shared;
pub mod span;
pub mod stream;
pub mod thread;
pub mod timing;
pub mod trace;
pub mod warp;

/// Convenient glob import for simulator users.
pub mod prelude {
    pub use crate::constant::CBuf;
    pub use crate::counters::{CostCounters, KernelStats};
    pub use crate::device::{Device, DeviceProfile, Vendor};
    pub use crate::dim::{Dim3, LaunchConfig};
    pub use crate::error::SimError;
    pub use crate::exec::{Kernel, KernelFlags};
    pub use crate::fault::{
        run_with_retry, FaultEvent, FaultKind, FaultPlan, FaultSite, FaultSnapshot, FaultState,
        RetryPolicy,
    };
    pub use crate::mem::{DBuf, DeviceScalar};
    pub use crate::shared::{SharedSlot, SharedView};
    pub use crate::span::{Span, SpanCategory, SpanLog, Track};
    pub use crate::stream::{Event, Stream, StreamStats};
    pub use crate::thread::ThreadCtx;
    pub use crate::timing::{CodegenInfo, ModeOverheads, ModeledTime};
}

pub use prelude::*;
