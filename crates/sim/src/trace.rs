//! Launch tracing: a per-device record of every kernel execution.
//!
//! The real systems in the paper are profiled with `nsys`/`rocprof`; this
//! module is the simulator's equivalent. When tracing is enabled on a
//! [`crate::device::Device`], every launch appends a [`LaunchRecord`]
//! (kernel name, geometry, counted events, and — once the language runtime
//! reports it — the modeled duration). The trace can be inspected
//! programmatically or exported in the Chrome trace-event format
//! (`chrome://tracing`, Perfetto) for visual inspection.

use crate::counters::StatsSnapshot;
use crate::dim::Dim3;
use parking_lot::Mutex;
use serde::Serialize;

/// One kernel execution, as recorded by the tracer.
#[derive(Debug, Clone, Serialize)]
pub struct LaunchRecord {
    /// Kernel name.
    pub kernel: String,
    /// Grid extent.
    pub grid: Dim3,
    /// Block extent.
    pub block: Dim3,
    /// Counted events.
    pub stats: StatsSnapshot,
    /// Modeled seconds. Raw `Device::launch` calls fill this with a
    /// default-codegen, no-overhead model of their own stats (so every
    /// record has a usable duration); language runtimes then overwrite it
    /// with their toolchain- and mode-aware value via
    /// [`Trace::attribute_model`].
    pub modeled_seconds: f64,
    /// True once a language runtime has overwritten `modeled_seconds`
    /// with its toolchain/mode-aware model.
    pub runtime_attributed: bool,
}

/// A launch trace: shared, thread-safe, append-only.
#[derive(Default)]
pub struct Trace {
    records: Mutex<Vec<LaunchRecord>>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn record(&self, rec: LaunchRecord) {
        self.records.lock().push(rec);
    }

    /// Attach a language runtime's modeled duration to the most recent
    /// record of `kernel` that only carries the device's default model
    /// (language runtimes model after launch, with the real codegen
    /// profile and execution-mode overheads).
    pub fn attribute_model(&self, kernel: &str, seconds: f64) {
        let mut recs = self.records.lock();
        if let Some(r) = recs.iter_mut().rev().find(|r| r.kernel == kernel && !r.runtime_attributed)
        {
            r.modeled_seconds = seconds;
            r.runtime_attributed = true;
        }
    }

    /// Number of recorded launches.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<LaunchRecord> {
        self.records.lock().clone()
    }

    /// Clear the trace.
    pub fn clear(&self) {
        self.records.lock().clear();
    }

    /// Export as Chrome trace-event JSON (open in `chrome://tracing` or
    /// Perfetto). Records are laid out back-to-back on one serialized
    /// launch-order track using their modeled durations (every record has
    /// one now that raw launches model their own stats); the modeled
    /// seconds are included in each event's `args`.
    ///
    /// This is the quick launch-order view. The *timeline* view — host
    /// track, one track per stream, flow arrows, memcpy bars — is built by
    /// `ompx-prof` from [`crate::span::SpanLog`] events.
    pub fn to_chrome_trace(&self) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let recs = self.records.lock();
        let mut out = String::from("[\n");
        out.push_str(concat!(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,",
            "\"args\":{\"name\":\"launches (serialized order)\"}}"
        ));
        out.push_str(if recs.is_empty() { "\n" } else { ",\n" });
        let mut cursor_us = 0.0f64;
        for (i, r) in recs.iter().enumerate() {
            let dur_us = if r.modeled_seconds > 0.0 { r.modeled_seconds * 1e6 } else { 1.0 };
            let comma = if i + 1 < recs.len() { "," } else { "" };
            out.push_str(&format!(
                concat!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},",
                    "\"pid\":0,\"tid\":0,\"args\":{{\"grid\":\"{}x{}x{}\",",
                    "\"block\":\"{}x{}x{}\",\"flops\":{},\"global_bytes\":{},",
                    "\"modeled_seconds\":{:e},\"runtime_attributed\":{}}}}}{}\n"
                ),
                escape(&r.kernel),
                cursor_us,
                dur_us,
                r.grid.x,
                r.grid.y,
                r.grid.z,
                r.block.x,
                r.block.y,
                r.block.z,
                r.stats.flops,
                r.stats.global_bytes(),
                r.modeled_seconds,
                r.runtime_attributed,
                comma
            ));
            cursor_us += dur_us;
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str) -> LaunchRecord {
        LaunchRecord {
            kernel: name.to_string(),
            grid: Dim3::x(4),
            block: Dim3::x(64),
            stats: StatsSnapshot { flops: 100, ..Default::default() },
            modeled_seconds: 0.0,
            runtime_attributed: false,
        }
    }

    #[test]
    fn records_accumulate_in_order() {
        let t = Trace::new();
        assert!(t.is_empty());
        t.record(rec("a"));
        t.record(rec("b"));
        assert_eq!(t.len(), 2);
        let names: Vec<_> = t.records().into_iter().map(|r| r.kernel).collect();
        assert_eq!(names, vec!["a", "b"]);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn model_attribution_hits_latest_unmodeled() {
        let t = Trace::new();
        t.record(rec("k"));
        t.record(rec("k"));
        t.attribute_model("k", 1e-3);
        let recs = t.records();
        // The most recent unmodeled record got the time.
        assert_eq!(recs[1].modeled_seconds, 1e-3);
        assert_eq!(recs[0].modeled_seconds, 0.0);
        t.attribute_model("k", 2e-3);
        assert_eq!(t.records()[0].modeled_seconds, 2e-3);
    }

    #[test]
    fn attribution_overwrites_the_device_default_model() {
        // Raw launches now self-model (nonzero seconds, not runtime
        // attributed); a language runtime's later attribution must replace
        // that default rather than skip the record.
        let t = Trace::new();
        let mut r = rec("k");
        r.modeled_seconds = 7e-6;
        t.record(r);
        t.attribute_model("k", 3e-6);
        let recs = t.records();
        assert_eq!(recs[0].modeled_seconds, 3e-6);
        assert!(recs[0].runtime_attributed);
        // A second attribution finds nothing left to claim.
        t.attribute_model("k", 9e-6);
        assert_eq!(t.records()[0].modeled_seconds, 3e-6);
    }

    #[test]
    fn chrome_trace_is_wellformed_enough() {
        let t = Trace::new();
        let mut r = rec("kernel \"quoted\"");
        r.modeled_seconds = 5e-6;
        t.record(r);
        t.record(rec("plain"));
        let json = t.to_chrome_trace();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"dur\":5.000"));
        // Two events, one comma.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }
}
