//! Cost counters: the per-thread event counts that feed the timing model.
//!
//! Each simulated thread accumulates a private [`CostCounters`]; the executor
//! folds them into a launch-wide [`KernelStats`] when the thread retires.
//! These are the quantities a GPU charges time for; [`crate::timing`] turns
//! them into a modeled execution time.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-thread event counters (plain fields — no synchronization cost on the
/// hot path of the functional simulation).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostCounters {
    /// Floating-point operations (fused multiply-add counts as 2).
    pub flops: u64,
    /// Integer/logic ALU operations that the kernel wants costed explicitly.
    pub int_ops: u64,
    /// Bytes read from global memory.
    pub global_load_bytes: u64,
    /// Bytes written to global memory.
    pub global_store_bytes: u64,
    /// Individual shared-memory accesses (reads + writes).
    pub shared_accesses: u64,
    /// Block-wide barriers this thread participated in.
    pub barriers: u64,
    /// Warp-level synchronizations/shuffles this thread participated in.
    pub warp_ops: u64,
    /// Global-memory atomic operations.
    pub atomic_ops: u64,
    /// Branches annotated as warp-divergent by the kernel.
    pub divergent_branches: u64,
    /// Operations executed in a serialized (master-only) runtime section;
    /// used by the OpenMP generic-mode device runtime model.
    pub serial_ops: u64,
    /// Constant-memory reads (broadcast-cached, near-register cost).
    pub const_reads: u64,
    /// Bytes read through warp-uniform (broadcast) loads; the hardware
    /// serves one transaction per warp, so the timing model divides these
    /// by the warp width.
    pub uniform_load_bytes: u64,
}

impl CostCounters {
    /// Add another counter set into this one.
    pub fn merge(&mut self, other: &CostCounters) {
        self.flops += other.flops;
        self.int_ops += other.int_ops;
        self.global_load_bytes += other.global_load_bytes;
        self.global_store_bytes += other.global_store_bytes;
        self.shared_accesses += other.shared_accesses;
        self.barriers += other.barriers;
        self.warp_ops += other.warp_ops;
        self.atomic_ops += other.atomic_ops;
        self.divergent_branches += other.divergent_branches;
        self.serial_ops += other.serial_ops;
        self.const_reads += other.const_reads;
        self.uniform_load_bytes += other.uniform_load_bytes;
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == CostCounters::default()
    }
}

/// Launch-wide aggregate of all retired threads' counters, plus launch
/// geometry. Thread-safe: the executor's workers fold into it concurrently.
#[derive(Debug, Default)]
pub struct KernelStats {
    flops: AtomicU64,
    int_ops: AtomicU64,
    global_load_bytes: AtomicU64,
    global_store_bytes: AtomicU64,
    shared_accesses: AtomicU64,
    barriers: AtomicU64,
    warp_ops: AtomicU64,
    atomic_ops: AtomicU64,
    divergent_branches: AtomicU64,
    serial_ops: AtomicU64,
    const_reads: AtomicU64,
    uniform_load_bytes: AtomicU64,
    threads_executed: AtomicU64,
    blocks_executed: AtomicU64,
}

impl KernelStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one retired thread's counters in.
    pub fn absorb(&self, c: &CostCounters) {
        self.flops.fetch_add(c.flops, Ordering::Relaxed);
        self.int_ops.fetch_add(c.int_ops, Ordering::Relaxed);
        self.global_load_bytes.fetch_add(c.global_load_bytes, Ordering::Relaxed);
        self.global_store_bytes.fetch_add(c.global_store_bytes, Ordering::Relaxed);
        self.shared_accesses.fetch_add(c.shared_accesses, Ordering::Relaxed);
        self.barriers.fetch_add(c.barriers, Ordering::Relaxed);
        self.warp_ops.fetch_add(c.warp_ops, Ordering::Relaxed);
        self.atomic_ops.fetch_add(c.atomic_ops, Ordering::Relaxed);
        self.divergent_branches.fetch_add(c.divergent_branches, Ordering::Relaxed);
        self.serial_ops.fetch_add(c.serial_ops, Ordering::Relaxed);
        self.const_reads.fetch_add(c.const_reads, Ordering::Relaxed);
        self.uniform_load_bytes.fetch_add(c.uniform_load_bytes, Ordering::Relaxed);
        self.threads_executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold a whole block's pre-merged counters at once, attributing them to
    /// `threads` simulated threads (used by the serial execution path, which
    /// merges lane counters locally to avoid per-lane atomics).
    pub fn absorb_block(&self, c: &CostCounters, threads: u64) {
        self.absorb(c);
        self.threads_executed.fetch_add(threads.saturating_sub(1), Ordering::Relaxed);
    }

    /// Record one completed block.
    pub fn block_done(&self) {
        self.blocks_executed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn flops(&self) -> u64 {
        self.flops.load(Ordering::Relaxed)
    }
    pub fn int_ops(&self) -> u64 {
        self.int_ops.load(Ordering::Relaxed)
    }
    pub fn global_load_bytes(&self) -> u64 {
        self.global_load_bytes.load(Ordering::Relaxed)
    }
    pub fn global_store_bytes(&self) -> u64 {
        self.global_store_bytes.load(Ordering::Relaxed)
    }
    pub fn global_bytes(&self) -> u64 {
        self.global_load_bytes() + self.global_store_bytes()
    }
    pub fn shared_accesses(&self) -> u64 {
        self.shared_accesses.load(Ordering::Relaxed)
    }
    pub fn barriers(&self) -> u64 {
        self.barriers.load(Ordering::Relaxed)
    }
    pub fn warp_ops(&self) -> u64 {
        self.warp_ops.load(Ordering::Relaxed)
    }
    pub fn atomic_ops(&self) -> u64 {
        self.atomic_ops.load(Ordering::Relaxed)
    }
    pub fn divergent_branches(&self) -> u64 {
        self.divergent_branches.load(Ordering::Relaxed)
    }
    pub fn serial_ops(&self) -> u64 {
        self.serial_ops.load(Ordering::Relaxed)
    }
    pub fn const_reads(&self) -> u64 {
        self.const_reads.load(Ordering::Relaxed)
    }
    pub fn uniform_load_bytes(&self) -> u64 {
        self.uniform_load_bytes.load(Ordering::Relaxed)
    }
    pub fn threads_executed(&self) -> u64 {
        self.threads_executed.load(Ordering::Relaxed)
    }
    pub fn blocks_executed(&self) -> u64 {
        self.blocks_executed.load(Ordering::Relaxed)
    }

    /// Snapshot into a plain, serializable summary.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            flops: self.flops(),
            int_ops: self.int_ops(),
            global_load_bytes: self.global_load_bytes(),
            global_store_bytes: self.global_store_bytes(),
            shared_accesses: self.shared_accesses(),
            barriers: self.barriers(),
            warp_ops: self.warp_ops(),
            atomic_ops: self.atomic_ops(),
            divergent_branches: self.divergent_branches(),
            serial_ops: self.serial_ops(),
            const_reads: self.const_reads(),
            uniform_load_bytes: self.uniform_load_bytes(),
            threads_executed: self.threads_executed(),
            blocks_executed: self.blocks_executed(),
        }
    }
}

/// A plain-data snapshot of [`KernelStats`], scalable for workload
/// extrapolation (the benchmarks simulate a scaled-down problem and multiply
/// counters up to the paper's problem size before timing — see DESIGN.md §2).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    pub flops: u64,
    pub int_ops: u64,
    pub global_load_bytes: u64,
    pub global_store_bytes: u64,
    pub shared_accesses: u64,
    pub barriers: u64,
    pub warp_ops: u64,
    pub atomic_ops: u64,
    pub divergent_branches: u64,
    pub serial_ops: u64,
    pub const_reads: u64,
    pub uniform_load_bytes: u64,
    pub threads_executed: u64,
    pub blocks_executed: u64,
}

impl StatsSnapshot {
    /// Total global-memory traffic in bytes.
    pub fn global_bytes(&self) -> u64 {
        self.global_load_bytes + self.global_store_bytes
    }

    /// Multiply every extensive counter by `factor` (workload extrapolation).
    pub fn scaled(&self, factor: f64) -> StatsSnapshot {
        let s = |v: u64| ((v as f64) * factor).round() as u64;
        StatsSnapshot {
            flops: s(self.flops),
            int_ops: s(self.int_ops),
            global_load_bytes: s(self.global_load_bytes),
            global_store_bytes: s(self.global_store_bytes),
            shared_accesses: s(self.shared_accesses),
            barriers: s(self.barriers),
            warp_ops: s(self.warp_ops),
            atomic_ops: s(self.atomic_ops),
            divergent_branches: s(self.divergent_branches),
            serial_ops: s(self.serial_ops),
            const_reads: s(self.const_reads),
            uniform_load_bytes: s(self.uniform_load_bytes),
            threads_executed: s(self.threads_executed),
            blocks_executed: s(self.blocks_executed),
        }
    }

    /// Element-wise sum of two snapshots (multi-kernel launches).
    pub fn merged(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            flops: self.flops + other.flops,
            int_ops: self.int_ops + other.int_ops,
            global_load_bytes: self.global_load_bytes + other.global_load_bytes,
            global_store_bytes: self.global_store_bytes + other.global_store_bytes,
            shared_accesses: self.shared_accesses + other.shared_accesses,
            barriers: self.barriers + other.barriers,
            warp_ops: self.warp_ops + other.warp_ops,
            atomic_ops: self.atomic_ops + other.atomic_ops,
            divergent_branches: self.divergent_branches + other.divergent_branches,
            serial_ops: self.serial_ops + other.serial_ops,
            const_reads: self.const_reads + other.const_reads,
            uniform_load_bytes: self.uniform_load_bytes + other.uniform_load_bytes,
            threads_executed: self.threads_executed + other.threads_executed,
            blocks_executed: self.blocks_executed + other.blocks_executed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = CostCounters { flops: 1, global_load_bytes: 4, ..Default::default() };
        let b = CostCounters { flops: 2, barriers: 3, serial_ops: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.flops, 3);
        assert_eq!(a.global_load_bytes, 4);
        assert_eq!(a.barriers, 3);
        assert_eq!(a.serial_ops, 7);
    }

    #[test]
    fn absorb_counts_threads() {
        let stats = KernelStats::new();
        let c = CostCounters { flops: 10, atomic_ops: 2, ..Default::default() };
        stats.absorb(&c);
        stats.absorb(&c);
        stats.block_done();
        assert_eq!(stats.flops(), 20);
        assert_eq!(stats.atomic_ops(), 4);
        assert_eq!(stats.threads_executed(), 2);
        assert_eq!(stats.blocks_executed(), 1);
    }

    #[test]
    fn snapshot_scaling_rounds() {
        let stats = KernelStats::new();
        stats.absorb(&CostCounters { flops: 10, global_store_bytes: 3, ..Default::default() });
        let snap = stats.snapshot();
        let scaled = snap.scaled(2.5);
        assert_eq!(scaled.flops, 25);
        assert_eq!(scaled.global_store_bytes, 8); // 7.5 rounds to 8
        assert_eq!(scaled.threads_executed, 3); // 2.5 rounds
    }

    #[test]
    fn snapshot_merge_is_elementwise() {
        let a = StatsSnapshot { flops: 1, barriers: 2, ..Default::default() };
        let b = StatsSnapshot { flops: 10, shared_accesses: 5, ..Default::default() };
        let m = a.merged(&b);
        assert_eq!(m.flops, 11);
        assert_eq!(m.barriers, 2);
        assert_eq!(m.shared_accesses, 5);
    }

    #[test]
    fn concurrent_absorb_is_lossless() {
        let stats = std::sync::Arc::new(KernelStats::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let st = stats.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        st.absorb(&CostCounters { flops: 1, ..Default::default() });
                    }
                });
            }
        });
        assert_eq!(stats.flops(), 4000);
        assert_eq!(stats.threads_executed(), 4000);
    }
}
