//! Seeded, deterministic fault injection for the simulated GPU substrate.
//!
//! Real accelerators fail: `cudaMalloc` runs out of memory, transfers hit
//! ECC events, kernels trip the driver watchdog, whole devices fall off the
//! bus. The substrate models those failures the same way it models time —
//! deterministically. A [`FaultPlan`] is a pure function of `(seed, site,
//! per-site operation index)`: the same plan against the same program
//! produces the same faults at the same operations on every run, so chaos
//! tests are reproducible and a fault-free plan is bit-identical to no plan
//! at all.
//!
//! Attachment follows the ambient pattern the sanitizer, memory trace and
//! span log established: a harness builds a [`FaultState`] from a plan and
//! attaches it to a [`Device`] ([`Device::attach_faults`]); while attached,
//! the device's allocation, memcpy, launch and stream-synchronize paths
//! consult it ("roll") before doing real work. With no state attached the
//! hot paths pay one mutex-guarded `Option` clone.
//!
//! ## Episodes and the recovery guarantee
//!
//! A fired fault starts a per-site *episode* of `burst` consecutive failing
//! rolls (`1 ..= max_burst`, capped at [`BURST_CAP`]); the roll that ends an
//! episode succeeds **without** a fresh rate check. Episodes are keyed per
//! site, so a retry loop at one site is guaranteed to succeed within
//! `burst + 1 <=` [`RetryPolicy::default`]'s `max_attempts` attempts — the
//! property the whole recovery story rests on: every *transient* injected
//! fault is clearable by bounded retry.
//!
//! Non-transient faults (watchdog timeout, device loss) are not retried;
//! the language runtimes degrade instead (host fallback for OpenMP target
//! regions, functional-only execution elsewhere) and record a sticky error,
//! mirroring CUDA's sticky-error model. A watchdog timeout is the nasty
//! one: the killed kernel has already *committed* a deterministic prefix
//! of its blocks (`K = salt % num_blocks`, the same splitmix64 salt that
//! drives every other decision), so the device checkpoints the kernel's
//! write-set before the partial execution and the recovery paths restore
//! it ([`Device::restore_checkpoint`]) before their injection-blind
//! re-dispatch — which is what keeps degraded results bit-identical to
//! the fault-free run.

use crate::device::Device;
use crate::error::SimResult;
use crate::span::SpanCategory;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Hard cap on episode length, chosen so the default retry budget
/// (`1 + BURST_CAP` attempts) always outlasts an episode.
pub const BURST_CAP: u32 = 3;

/// Where in the substrate a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Device memory allocation (`cudaMalloc`).
    Alloc,
    /// Host-to-device transfer.
    MemcpyH2D,
    /// Device-to-host transfer.
    MemcpyD2H,
    /// Device-to-device transfer.
    MemcpyD2D,
    /// Kernel launch. Most launch faults fire before execution and leave
    /// no side effects; an injected watchdog timeout instead executes and
    /// commits a deterministic prefix of the grid's blocks first — see
    /// [`FaultKind::Watchdog`].
    Launch,
    /// Stream synchronization.
    StreamSync,
}

impl FaultSite {
    /// Every site, in stable order (indexes the per-site state slots).
    pub const ALL: [FaultSite; 6] = [
        FaultSite::Alloc,
        FaultSite::MemcpyH2D,
        FaultSite::MemcpyD2H,
        FaultSite::MemcpyD2D,
        FaultSite::Launch,
        FaultSite::StreamSync,
    ];

    /// Stable per-site slot index / hash domain separator.
    pub fn code(self) -> u64 {
        match self {
            FaultSite::Alloc => 0,
            FaultSite::MemcpyH2D => 1,
            FaultSite::MemcpyD2H => 2,
            FaultSite::MemcpyD2D => 3,
            FaultSite::Launch => 4,
            FaultSite::StreamSync => 5,
        }
    }

    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Alloc => "alloc",
            FaultSite::MemcpyH2D => "memcpy_h2d",
            FaultSite::MemcpyD2H => "memcpy_d2h",
            FaultSite::MemcpyD2D => "memcpy_d2d",
            FaultSite::Launch => "launch",
            FaultSite::StreamSync => "stream_sync",
        }
    }

    /// The fault kinds this site can produce under rate-based injection.
    fn kinds(self) -> &'static [FaultKind] {
        match self {
            FaultSite::Alloc => &[FaultKind::Oom],
            FaultSite::MemcpyH2D | FaultSite::MemcpyD2H | FaultSite::MemcpyD2D => {
                &[FaultKind::MemcpyFail, FaultKind::MemcpyCorrupt, FaultKind::Ecc]
            }
            FaultSite::Launch => &[FaultKind::LaunchFail, FaultKind::Ecc, FaultKind::Watchdog],
            FaultSite::StreamSync => &[FaultKind::StreamFail],
        }
    }
}

/// What kind of failure an injection models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Allocation reports device-memory exhaustion.
    Oom,
    /// Transfer fails outright (no data moves).
    MemcpyFail,
    /// Transfer "completes" but one element is bit-flipped; the API reports
    /// the corruption (ECC detected-uncorrected). A retry re-copies and
    /// thereby repairs the destination.
    MemcpyCorrupt,
    /// Kernel launch rejected by the simulated driver.
    LaunchFail,
    /// Kernel exceeds the modeled watchdog limit and is killed mid-run:
    /// the first `salt % num_blocks` blocks execute and **commit** before
    /// the error surfaces, so the failed launch leaves partial side
    /// effects behind, like a real GPU watchdog. The device checkpoints
    /// the kernel's write-set first so recovery paths can restore the
    /// pre-launch state (`Device::restore_checkpoint`).
    Watchdog,
    /// Transient ECC-style error; a retry is expected to clear it.
    Ecc,
    /// Stream operation failure.
    StreamFail,
    /// Whole-device loss: sticky, every later rolled operation fails.
    DeviceLost,
}

impl FaultKind {
    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Oom => "oom",
            FaultKind::MemcpyFail => "memcpy_fail",
            FaultKind::MemcpyCorrupt => "memcpy_corrupt",
            FaultKind::LaunchFail => "launch_fail",
            FaultKind::Watchdog => "watchdog",
            FaultKind::Ecc => "ecc",
            FaultKind::StreamFail => "stream_fail",
            FaultKind::DeviceLost => "device_lost",
        }
    }
}

/// A seeded, deterministic schedule of faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-operation hash.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given operation starts a fault
    /// episode (evaluated per site-local operation index).
    pub rate: f64,
    /// Longest episode the plan may start (clamped to [`BURST_CAP`]).
    pub max_burst: u32,
    /// Global operation index at which the whole device is lost, if any.
    pub lose_device_at: Option<u64>,
    /// Explicit single-shot injections: `(site, site-local op index, kind)`.
    /// These fire exactly once (burst 1), independent of `rate`.
    pub injections: Vec<(FaultSite, u64, FaultKind)>,
    /// When set, rate-based episodes fire only this kind: sites whose kind
    /// table does not include it never fire, and sites that do always pick
    /// it. Explicit injections and `lose_device_at` are unaffected. Used
    /// for kind-focused chaos schedules (e.g. watchdog-only).
    pub only: Option<FaultKind>,
}

impl FaultPlan {
    /// The empty plan: injects nothing, adds no overhead beyond the rolls.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rate: 0.0,
            max_burst: 1,
            lose_device_at: None,
            injections: Vec::new(),
            only: None,
        }
    }

    /// Rate-based plan: each operation starts an episode with probability
    /// `rate`, deterministically derived from `seed`.
    pub fn seeded(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            max_burst: BURST_CAP,
            lose_device_at: None,
            injections: Vec::new(),
            only: None,
        }
    }

    /// Lose the whole device once `n` operations (across all sites) have
    /// been issued.
    pub fn with_device_loss_at(mut self, n: u64) -> FaultPlan {
        self.lose_device_at = Some(n);
        self
    }

    /// Add an explicit single-shot injection at `(site, op)`.
    pub fn with_injection(mut self, site: FaultSite, op: u64, kind: FaultKind) -> FaultPlan {
        self.injections.push((site, op, kind));
        self
    }

    /// Restrict rate-based episodes to `kind` (e.g. watchdog-only chaos
    /// schedules). Sites that cannot produce `kind` stop firing.
    pub fn with_only_kind(mut self, kind: FaultKind) -> FaultPlan {
        self.only = Some(kind);
        self
    }

    /// Derive the plan for pool member `member` of a device pool: same
    /// rate, burst, kind restriction and explicit injections, but an
    /// *independent* seed (splitmix64 over the base seed and the member
    /// index). A serving pool installs one base plan and derives each
    /// member's from it, so chaos schedules do not correlate across
    /// devices — member 0 faulting at operation `n` says nothing about
    /// member 1's operation `n`. `lose_device_at` is kept only on member
    /// 0 by default (losing *every* pool device at the same operation is
    /// exactly the correlated schedule this exists to avoid); use
    /// [`FaultPlan::with_device_loss_at`] after deriving to lose a
    /// specific member.
    pub fn for_pool_member(&self, member: usize) -> FaultPlan {
        let mut plan = self.clone();
        plan.seed = splitmix64(
            self.seed ^ splitmix64(0x6F6D_7078_5F73_7276 ^ (member as u64).wrapping_mul(0x9E37)),
        );
        if member != 0 {
            plan.lose_device_at = None;
        }
        plan
    }

    /// True when the plan can never fire (the fault-free baseline).
    pub fn is_quiet(&self) -> bool {
        self.rate <= 0.0 && self.lose_device_at.is_none() && self.injections.is_empty()
    }
}

/// Bounded-retry policy with deterministic modeled-time backoff.
///
/// The default budget (`1 + BURST_CAP` attempts) is sized so that any
/// transient episode a [`FaultPlan`] can start is outlasted — see the
/// module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Clamped to at least 1.
    pub max_attempts: u32,
    /// Modeled backoff before retry `k` is `backoff_base_s * 2^(k-1)`.
    pub backoff_base_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 1 + BURST_CAP, backoff_base_s: 20e-6 }
    }
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, backoff_base_s: 0.0 }
    }

    /// Modeled backoff (seconds) charged before retry number `attempt`
    /// (1-based count of already-failed attempts; 0 is treated as 1).
    /// The doubling ladder saturates instead of wrapping: once the shift
    /// exceeds the width of `u64` the factor pins at `u64::MAX`, so the
    /// backoff is monotone non-decreasing for *every* attempt number.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let factor = 1u64.checked_shl(attempt.saturating_sub(1)).unwrap_or(u64::MAX);
        self.backoff_base_s * factor as f64
    }
}

/// One fired fault (recorded once per episode start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    pub site: FaultSite,
    /// Site-local operation index the episode started at.
    pub op: u64,
    pub kind: FaultKind,
}

/// The injection decision for one rolled operation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Injected {
    pub kind: FaultKind,
    /// Deterministic per-episode salt (picks e.g. the corrupted element).
    pub salt: u64,
}

/// An in-progress fault episode at one site.
struct Episode {
    kind: FaultKind,
    /// Failing rolls still owed *after* the one that started the episode.
    remaining: u32,
    salt: u64,
}

/// Everything observed while a plan was attached: the chaos harness's
/// ground truth.
#[derive(Debug, Clone, Default)]
pub struct FaultSnapshot {
    /// Episodes fired, in order.
    pub injected: Vec<FaultEvent>,
    /// Operations that failed at least once and then succeeded on retry.
    pub recovered: u64,
    /// Target regions re-dispatched through the host-fallback path.
    pub fallbacks: Vec<String>,
    /// Operations that gave up on injection and completed unchecked.
    pub degraded: Vec<String>,
    /// Errors recorded as sticky device state (retries exhausted or
    /// non-transient faults).
    pub sticky: Vec<String>,
    /// True once the plan's device loss has fired.
    pub device_lost: bool,
}

/// Live injection state for one attached [`FaultPlan`].
pub struct FaultState {
    plan: FaultPlan,
    /// Per-site operation counters (indexed by [`FaultSite::code`]).
    site_ops: [AtomicU64; 6],
    /// Operations rolled across all sites (drives `lose_device_at`).
    global_ops: AtomicU64,
    /// Per-site episode slots (indexed by [`FaultSite::code`]).
    episodes: [Mutex<Option<Episode>>; 6],
    injected: Mutex<Vec<FaultEvent>>,
    recovered: AtomicU64,
    fallbacks: Mutex<Vec<String>>,
    degraded: Mutex<Vec<String>>,
    sticky: Mutex<Vec<String>>,
    lost: AtomicBool,
}

/// SplitMix64 finalizer: the deterministic hash behind every injection
/// decision (same generator the benchmark input generators use).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultState {
    /// Fresh state for `plan`.
    pub fn new(plan: FaultPlan) -> Arc<FaultState> {
        Arc::new(FaultState {
            plan,
            site_ops: Default::default(),
            global_ops: AtomicU64::new(0),
            episodes: Default::default(),
            injected: Mutex::new(Vec::new()),
            recovered: AtomicU64::new(0),
            fallbacks: Mutex::new(Vec::new()),
            degraded: Mutex::new(Vec::new()),
            sticky: Mutex::new(Vec::new()),
            lost: AtomicBool::new(false),
        })
    }

    /// The plan this state injects from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Count an injection on the ambient metric registry, if one is
    /// installed, labeled by fault kind and injection site.
    fn meter_injection(site: FaultSite, kind: FaultKind) {
        if let Some(reg) = ompx_telemetry::active() {
            reg.counter_add(
                "fault_injected_total",
                &[("kind", kind.label()), ("site", site.label())],
                1,
            );
        }
    }

    /// Decide whether the next operation at `site` faults.
    pub(crate) fn roll(&self, site: FaultSite) -> Option<Injected> {
        let slot = site.code() as usize;
        let op = self.site_ops[slot].fetch_add(1, Ordering::Relaxed);
        let gop = self.global_ops.fetch_add(1, Ordering::Relaxed);

        if self.lost.load(Ordering::Acquire) {
            return Some(Injected { kind: FaultKind::DeviceLost, salt: 0 });
        }
        if let Some(at) = self.plan.lose_device_at {
            if gop >= at {
                self.lost.store(true, Ordering::Release);
                self.injected.lock().push(FaultEvent { site, op, kind: FaultKind::DeviceLost });
                Self::meter_injection(site, FaultKind::DeviceLost);
                return Some(Injected { kind: FaultKind::DeviceLost, salt: 0 });
            }
        }

        let mut episode = self.episodes[slot].lock();
        if let Some(ep) = episode.as_mut() {
            if ep.remaining > 0 {
                ep.remaining -= 1;
                return Some(Injected { kind: ep.kind, salt: ep.salt });
            }
            // The roll that ends an episode succeeds with *no* fresh rate
            // check — this is the bounded-retry recovery guarantee.
            *episode = None;
            return None;
        }

        // Explicit single-shot injections fire with burst 1 (the next roll
        // at this site succeeds), independent of the rate.
        if let Some(&(_, _, kind)) =
            self.plan.injections.iter().find(|(s, o, _)| *s == site && *o == op)
        {
            let salt = splitmix64(self.plan.seed ^ site.code() ^ op);
            *episode = Some(Episode { kind, remaining: 0, salt });
            self.injected.lock().push(FaultEvent { site, op, kind });
            Self::meter_injection(site, kind);
            return Some(Injected { kind, salt });
        }

        if self.plan.rate <= 0.0 {
            return None;
        }
        let h = splitmix64(
            self.plan
                .seed
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(site.code().wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(op),
        );
        let uniform = (h >> 11) as f64 / (1u64 << 53) as f64;
        if uniform >= self.plan.rate {
            return None;
        }
        let h2 = splitmix64(h);
        let kind = match self.plan.only {
            Some(k) => {
                if !site.kinds().contains(&k) {
                    return None;
                }
                k
            }
            None => {
                let kinds = site.kinds();
                kinds[(h2 % kinds.len() as u64) as usize]
            }
        };
        let burst = 1 + ((h2 >> 8) as u32 % self.plan.max_burst.clamp(1, BURST_CAP));
        *episode = Some(Episode { kind, remaining: burst - 1, salt: h2 });
        self.injected.lock().push(FaultEvent { site, op, kind });
        Self::meter_injection(site, kind);
        Some(Injected { kind, salt: h2 })
    }

    /// Record a retry that ultimately succeeded.
    pub fn note_recovered(&self) {
        self.recovered.fetch_add(1, Ordering::Relaxed);
        if let Some(reg) = ompx_telemetry::active() {
            reg.counter_add("fault_recovered_total", &[], 1);
        }
    }

    /// Record a target region re-dispatched through the host fallback.
    pub fn note_fallback(&self, what: &str) {
        self.fallbacks.lock().push(what.to_string());
        if let Some(reg) = ompx_telemetry::active() {
            reg.counter_add("fault_fallbacks_total", &[], 1);
        }
    }

    /// Record an operation that bypassed injection and completed unchecked.
    pub fn note_degraded(&self, what: &str) {
        self.degraded.lock().push(what.to_string());
        if let Some(reg) = ompx_telemetry::active() {
            reg.counter_add("fault_degraded_total", &[], 1);
        }
    }

    /// Record an error that became sticky device state.
    pub fn note_sticky(&self, what: &str) {
        self.sticky.lock().push(what.to_string());
        if let Some(reg) = ompx_telemetry::active() {
            reg.counter_add("fault_sticky_total", &[], 1);
        }
    }

    /// True once the plan's device loss has fired.
    pub fn device_lost(&self) -> bool {
        self.lost.load(Ordering::Acquire)
    }

    /// Mark the device lost (also done implicitly by `lose_device_at`).
    pub fn mark_lost(&self) {
        self.lost.store(true, Ordering::Release);
    }

    /// Everything observed so far.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            injected: self.injected.lock().clone(),
            recovered: self.recovered.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.lock().clone(),
            degraded: self.degraded.lock().clone(),
            sticky: self.sticky.lock().clone(),
            device_lost: self.lost.load(Ordering::Acquire),
        }
    }
}

/// Run `f` under `policy`: transient failures are retried with modeled
/// exponential backoff (each retry is a `retry` span on the host track, so
/// profiler timelines show the recovery); the final failure is recorded as
/// the device's sticky error and returned.
pub fn run_with_retry<T>(
    device: &Device,
    policy: &RetryPolicy,
    op_name: &str,
    mut f: impl FnMut() -> SimResult<T>,
) -> SimResult<T> {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 1u32;
    loop {
        match f() {
            Ok(v) => {
                if attempt > 1 {
                    if let Some(faults) = device.faults() {
                        faults.note_recovered();
                    }
                    if let Some(log) = crate::span::active() {
                        log.host_op(
                            &format!("recovered {op_name} (attempt {attempt})"),
                            SpanCategory::Retry,
                            0.0,
                            0,
                        );
                    }
                }
                return Ok(v);
            }
            Err(e) if e.is_transient() && attempt < max_attempts => {
                if let Some(log) = crate::span::active() {
                    log.host_op(
                        &format!("retry {op_name} #{attempt}: {e}"),
                        SpanCategory::Retry,
                        policy.backoff_s(attempt),
                        0,
                    );
                }
                attempt += 1;
            }
            Err(e) => {
                device.record_error(e.clone());
                if let Some(faults) = device.faults() {
                    faults.note_sticky(&format!("{op_name}: {e}"));
                }
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let st = FaultState::new(FaultPlan::none());
        for site in FaultSite::ALL {
            for _ in 0..200 {
                assert!(st.roll(site).is_none());
            }
        }
        let snap = st.snapshot();
        assert!(snap.injected.is_empty());
        assert!(!snap.device_lost);
    }

    #[test]
    fn rolls_are_deterministic_in_seed_and_op() {
        let fired = |seed| {
            let st = FaultState::new(FaultPlan::seeded(seed, 0.2));
            (0..100).filter_map(|_| st.roll(FaultSite::Launch).map(|i| i.kind)).collect::<Vec<_>>()
        };
        assert_eq!(fired(7), fired(7));
        assert_ne!(fired(7), fired(8), "different seeds should differ at rate 0.2");
        assert!(!fired(7).is_empty(), "rate 0.2 over 100 ops should fire");
    }

    #[test]
    fn episodes_end_in_guaranteed_success_within_burst_cap() {
        let st = FaultState::new(FaultPlan::seeded(42, 1.0));
        // Rate 1.0: every fresh roll starts an episode, but an episode must
        // still end in success after at most BURST_CAP failures.
        for _ in 0..20 {
            let mut failures = 0;
            while st.roll(FaultSite::MemcpyH2D).is_some() {
                failures += 1;
                assert!(failures <= BURST_CAP, "episode exceeded the burst cap");
            }
            assert!(failures >= 1, "rate 1.0 must fire every episode");
        }
    }

    #[test]
    fn explicit_injection_fires_once_at_the_named_op() {
        let st =
            FaultState::new(FaultPlan::none().with_injection(FaultSite::Alloc, 3, FaultKind::Oom));
        for op in 0..10u64 {
            let hit = st.roll(FaultSite::Alloc);
            if op == 3 {
                assert_eq!(hit.unwrap().kind, FaultKind::Oom);
                // The single-shot episode ends on the next roll (retry path).
                assert!(st.roll(FaultSite::Alloc).is_none());
            } else {
                assert!(hit.is_none(), "op {op} should not fault");
            }
        }
        assert_eq!(st.snapshot().injected.len(), 1);
    }

    #[test]
    fn device_loss_is_sticky_across_all_sites() {
        let st = FaultState::new(FaultPlan::none().with_device_loss_at(5));
        for _ in 0..5 {
            assert!(st.roll(FaultSite::Launch).is_none());
        }
        assert_eq!(st.roll(FaultSite::Launch).unwrap().kind, FaultKind::DeviceLost);
        assert!(st.device_lost());
        for site in FaultSite::ALL {
            assert_eq!(st.roll(site).unwrap().kind, FaultKind::DeviceLost);
        }
    }

    #[test]
    fn sites_fire_only_their_own_kinds() {
        let st = FaultState::new(FaultPlan::seeded(1234, 0.5));
        for site in FaultSite::ALL {
            for _ in 0..200 {
                if let Some(inj) = st.roll(site) {
                    assert!(
                        site.kinds().contains(&inj.kind),
                        "{:?} fired {:?}, not one of its kinds",
                        site,
                        inj.kind
                    );
                }
            }
        }
    }

    #[test]
    fn only_kind_filter_restricts_rate_based_episodes() {
        let st = FaultState::new(FaultPlan::seeded(7, 0.9).with_only_kind(FaultKind::Watchdog));
        let mut fired = 0;
        for site in FaultSite::ALL {
            for _ in 0..100 {
                if let Some(inj) = st.roll(site) {
                    assert_eq!(inj.kind, FaultKind::Watchdog, "{site:?} leaked another kind");
                    fired += 1;
                }
            }
        }
        assert!(fired > 0, "the launch site must fire watchdogs at rate 0.9");
        assert!(
            st.snapshot().injected.iter().all(|e| e.site == FaultSite::Launch),
            "only the launch site can produce watchdogs"
        );
    }

    #[test]
    fn pool_member_plans_are_decorrelated() {
        let base = FaultPlan::seeded(20260808, 0.15).with_device_loss_at(40);
        let fired = |plan: FaultPlan| {
            let st = FaultState::new(FaultPlan { lose_device_at: None, ..plan });
            (0..400).map(|_| st.roll(FaultSite::Launch).is_some()).collect::<Vec<_>>()
        };
        let m0 = fired(base.for_pool_member(0));
        let m1 = fired(base.for_pool_member(1));
        let m2 = fired(base.for_pool_member(2));
        assert_ne!(m0, m1, "members 0 and 1 share a schedule");
        assert_ne!(m1, m2, "members 1 and 2 share a schedule");
        // Derivation is deterministic: the same member gets the same seed.
        assert_eq!(base.for_pool_member(1), base.for_pool_member(1));
        // Rate/burst/injections carry over; device loss stays on member 0.
        assert_eq!(base.for_pool_member(3).rate, base.rate);
        assert_eq!(base.for_pool_member(0).lose_device_at, Some(40));
        assert_eq!(base.for_pool_member(3).lose_device_at, None);
    }

    #[test]
    fn default_retry_budget_outlasts_any_episode() {
        let p = RetryPolicy::default();
        assert!(p.max_attempts > BURST_CAP);
        assert!(p.backoff_s(2) > p.backoff_s(1), "backoff grows");
    }

    #[test]
    fn backoff_ladder_doubles_then_saturates() {
        let base = 20e-6;
        let p = RetryPolicy { max_attempts: 4, backoff_base_s: base };
        // Attempt 0 is out-of-contract input; it maps onto attempt 1
        // rather than underflowing the shift.
        assert_eq!(p.backoff_s(0), base);
        // The doubling ladder: 2^(k-1) * base.
        assert_eq!(p.backoff_s(1), base);
        assert_eq!(p.backoff_s(2), 2.0 * base);
        assert_eq!(p.backoff_s(3), 4.0 * base);
        assert_eq!(p.backoff_s(17), 65536.0 * base);
        // Largest in-width shift, then the saturation boundary: attempt
        // 65 shifts by 64 (out of range for u64) and must pin, not wrap.
        assert_eq!(p.backoff_s(64), (1u64 << 63) as f64 * base);
        assert_eq!(p.backoff_s(65), u64::MAX as f64 * base);
        assert_eq!(p.backoff_s(u32::MAX), u64::MAX as f64 * base);
        // Monotone non-decreasing across the boundary.
        assert!(p.backoff_s(65) >= p.backoff_s(64));
        assert!(p.backoff_s(66) >= p.backoff_s(65));
    }
}
