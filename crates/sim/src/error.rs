//! Error type shared across the simulator.

use std::fmt;

/// Errors produced by the simulator substrate.
///
/// The simulator deliberately panics on *simulated-program* bugs (e.g. an
/// out-of-bounds device access, which on a real GPU would be a memory fault)
/// and returns `SimError` for *host-side* misuse (bad launch configuration,
/// type confusion on shared-memory slots, exhausted device memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Grid or block dimension is zero or exceeds the device capability.
    InvalidLaunch(String),
    /// The device's modeled global memory capacity would be exceeded.
    OutOfDeviceMemory { requested: usize, available: usize },
    /// A shared-memory slot was accessed with the wrong element type.
    SharedTypeMismatch { slot: usize, expected: &'static str },
    /// A shared-memory slot index does not exist for this launch.
    SharedSlotOutOfRange { slot: usize, declared: usize },
    /// Per-block shared memory request exceeds the device limit.
    SharedMemExceeded { requested: usize, limit: usize },
    /// Host/device size mismatch in a memcpy-style operation.
    SizeMismatch { src: usize, dst: usize },
    /// Operation issued against a different device than the buffer's owner.
    WrongDevice { buffer_device: usize, op_device: usize },
    /// A kernel that uses warp primitives or barriers was launched through a
    /// path that cannot honour them.
    UnsupportedExecution(String),
    /// A host-device or device-device transfer failed (injected transfer
    /// fault). With `corrupted`, the data moved but one element was
    /// bit-flipped (ECC detected-uncorrected); a retry re-copies.
    MemcpyFault { dir: &'static str, bytes: usize, corrupted: bool },
    /// A kernel launch was rejected by the simulated driver (injected
    /// fault); the kernel did not run.
    LaunchFault { kernel: String },
    /// A transient ECC-style error (injected fault); a retry is expected to
    /// clear it.
    EccTransient { op: String },
    /// The kernel exceeded the modeled watchdog limit and was killed
    /// mid-run: a deterministic prefix of its blocks committed before the
    /// error surfaced, so the buffers hold partial results (injected
    /// fault; not retried — the same kernel would time out again).
    /// Recovery paths restore the device's pre-launch checkpoint before
    /// re-dispatching (`Device::restore_checkpoint`).
    WatchdogTimeout { kernel: String },
    /// A stream operation failed (injected fault).
    StreamFault { stream: u64 },
    /// The device was lost (injected fault; sticky — every later operation
    /// on the device fails until it is reset).
    DeviceLost { device: usize },
}

impl SimError {
    /// True for failures a bounded retry may clear: injected transient
    /// faults, plus memory exhaustion (the caller may free caches between
    /// attempts; under injection, an OOM episode ends within the burst cap).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::OutOfDeviceMemory { .. }
                | SimError::MemcpyFault { .. }
                | SimError::LaunchFault { .. }
                | SimError::EccTransient { .. }
                | SimError::StreamFault { .. }
        )
    }

    /// True for errors that persist as device state across
    /// `ompx_get_last_error` (CUDA's sticky-error model).
    pub fn is_sticky(&self) -> bool {
        matches!(self, SimError::DeviceLost { .. })
    }

    /// True for variants that only arise from fault injection — *not*
    /// `OutOfDeviceMemory`, which a correct program can hit for real and
    /// must see propagate.
    pub fn is_injected(&self) -> bool {
        matches!(
            self,
            SimError::MemcpyFault { .. }
                | SimError::LaunchFault { .. }
                | SimError::EccTransient { .. }
                | SimError::WatchdogTimeout { .. }
                | SimError::StreamFault { .. }
                | SimError::DeviceLost { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
            SimError::OutOfDeviceMemory { requested, available } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} available"
            ),
            SimError::SharedTypeMismatch { slot, expected } => {
                write!(f, "shared slot {slot} accessed with wrong type, expected {expected}")
            }
            SimError::SharedSlotOutOfRange { slot, declared } => {
                write!(f, "shared slot {slot} out of range ({declared} declared)")
            }
            SimError::SharedMemExceeded { requested, limit } => {
                write!(f, "shared memory request {requested} B exceeds device limit {limit} B")
            }
            SimError::SizeMismatch { src, dst } => {
                write!(f, "size mismatch: source {src} elements vs destination {dst}")
            }
            SimError::WrongDevice { buffer_device, op_device } => {
                write!(f, "buffer owned by device {buffer_device} used on device {op_device}")
            }
            SimError::UnsupportedExecution(msg) => write!(f, "unsupported execution: {msg}"),
            SimError::MemcpyFault { dir, bytes, corrupted } => {
                let how = if *corrupted { "corrupted" } else { "failed" };
                write!(f, "memcpy {dir} of {bytes} bytes {how}")
            }
            SimError::LaunchFault { kernel } => write!(f, "launch of kernel `{kernel}` failed"),
            SimError::EccTransient { op } => write!(f, "transient ECC error during {op}"),
            SimError::WatchdogTimeout { kernel } => {
                write!(
                    f,
                    "kernel `{kernel}` exceeded the watchdog time limit and was killed mid-run \
                     (partial block prefix committed)"
                )
            }
            SimError::StreamFault { stream } => write!(f, "operation on stream {stream} failed"),
            SimError::DeviceLost { device } => write!(f, "device {device} lost"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_the_relevant_numbers() {
        let cases: Vec<(SimError, &str)> = vec![
            (SimError::InvalidLaunch("grid=0".into()), "grid=0"),
            (SimError::OutOfDeviceMemory { requested: 128, available: 64 }, "128"),
            (SimError::SharedTypeMismatch { slot: 3, expected: "f32" }, "slot 3"),
            (SimError::SharedSlotOutOfRange { slot: 9, declared: 2 }, "9 out of range"),
            (SimError::SharedMemExceeded { requested: 4096, limit: 1024 }, "4096"),
            (SimError::SizeMismatch { src: 10, dst: 5 }, "source 10"),
            (SimError::WrongDevice { buffer_device: 1, op_device: 2 }, "device 1"),
            (SimError::UnsupportedExecution("warp ops".into()), "warp ops"),
            (SimError::MemcpyFault { dir: "H2D", bytes: 4096, corrupted: false }, "4096"),
            (SimError::MemcpyFault { dir: "D2H", bytes: 64, corrupted: true }, "corrupted"),
            (SimError::LaunchFault { kernel: "vecadd".into() }, "vecadd"),
            (SimError::EccTransient { op: "memcpy h2d".into() }, "ECC"),
            (SimError::WatchdogTimeout { kernel: "spin".into() }, "killed mid-run"),
            (SimError::StreamFault { stream: 12 }, "stream 12"),
            (SimError::DeviceLost { device: 3 }, "device 3"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
        // Errors are std errors (boxable, ?-compatible).
        let boxed: Box<dyn std::error::Error> = Box::new(SimError::InvalidLaunch("x".into()));
        assert!(boxed.to_string().contains("invalid launch"));
    }

    #[test]
    fn fault_classification_is_consistent() {
        let lost = SimError::DeviceLost { device: 0 };
        assert!(lost.is_sticky() && lost.is_injected() && !lost.is_transient());
        let watchdog = SimError::WatchdogTimeout { kernel: "k".into() };
        assert!(watchdog.is_injected() && !watchdog.is_transient() && !watchdog.is_sticky());
        for transient in [
            SimError::MemcpyFault { dir: "H2D", bytes: 1, corrupted: true },
            SimError::LaunchFault { kernel: "k".into() },
            SimError::EccTransient { op: "x".into() },
            SimError::StreamFault { stream: 1 },
        ] {
            assert!(transient.is_transient() && transient.is_injected() && !transient.is_sticky());
        }
        // Genuine OOM is retryable but must NOT be classed as injected —
        // a real exhaustion has to propagate to the program.
        let oom = SimError::OutOfDeviceMemory { requested: 8, available: 0 };
        assert!(oom.is_transient() && !oom.is_injected());
        let misuse = SimError::SizeMismatch { src: 1, dst: 2 };
        assert!(!misuse.is_transient() && !misuse.is_injected() && !misuse.is_sticky());
    }
}
