//! Error type shared across the simulator.

use std::fmt;

/// Errors produced by the simulator substrate.
///
/// The simulator deliberately panics on *simulated-program* bugs (e.g. an
/// out-of-bounds device access, which on a real GPU would be a memory fault)
/// and returns `SimError` for *host-side* misuse (bad launch configuration,
/// type confusion on shared-memory slots, exhausted device memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Grid or block dimension is zero or exceeds the device capability.
    InvalidLaunch(String),
    /// The device's modeled global memory capacity would be exceeded.
    OutOfDeviceMemory { requested: usize, available: usize },
    /// A shared-memory slot was accessed with the wrong element type.
    SharedTypeMismatch { slot: usize, expected: &'static str },
    /// A shared-memory slot index does not exist for this launch.
    SharedSlotOutOfRange { slot: usize, declared: usize },
    /// Per-block shared memory request exceeds the device limit.
    SharedMemExceeded { requested: usize, limit: usize },
    /// Host/device size mismatch in a memcpy-style operation.
    SizeMismatch { src: usize, dst: usize },
    /// Operation issued against a different device than the buffer's owner.
    WrongDevice { buffer_device: usize, op_device: usize },
    /// A kernel that uses warp primitives or barriers was launched through a
    /// path that cannot honour them.
    UnsupportedExecution(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
            SimError::OutOfDeviceMemory { requested, available } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} available"
            ),
            SimError::SharedTypeMismatch { slot, expected } => {
                write!(f, "shared slot {slot} accessed with wrong type, expected {expected}")
            }
            SimError::SharedSlotOutOfRange { slot, declared } => {
                write!(f, "shared slot {slot} out of range ({declared} declared)")
            }
            SimError::SharedMemExceeded { requested, limit } => {
                write!(f, "shared memory request {requested} B exceeds device limit {limit} B")
            }
            SimError::SizeMismatch { src, dst } => {
                write!(f, "size mismatch: source {src} elements vs destination {dst}")
            }
            SimError::WrongDevice { buffer_device, op_device } => {
                write!(f, "buffer owned by device {buffer_device} used on device {op_device}")
            }
            SimError::UnsupportedExecution(msg) => write!(f, "unsupported execution: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_the_relevant_numbers() {
        let cases: Vec<(SimError, &str)> = vec![
            (SimError::InvalidLaunch("grid=0".into()), "grid=0"),
            (SimError::OutOfDeviceMemory { requested: 128, available: 64 }, "128"),
            (SimError::SharedTypeMismatch { slot: 3, expected: "f32" }, "slot 3"),
            (SimError::SharedSlotOutOfRange { slot: 9, declared: 2 }, "9 out of range"),
            (SimError::SharedMemExceeded { requested: 4096, limit: 1024 }, "4096"),
            (SimError::SizeMismatch { src: 10, dst: 5 }, "source 10"),
            (SimError::WrongDevice { buffer_device: 1, op_device: 2 }, "device 1"),
            (SimError::UnsupportedExecution("warp ops".into()), "warp ops"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
        // Errors are std errors (boxable, ?-compatible).
        let boxed: Box<dyn std::error::Error> = Box::new(SimError::InvalidLaunch("x".into()));
        assert!(boxed.to_string().contains("invalid launch"));
    }
}
