//! # ompx-telemetry — deterministic metrics for the serving stack
//!
//! Production serving is flown on metrics: per-tenant latency
//! distributions, queue and batch health, fault and fallback rates. This
//! crate is the one telemetry layer the whole workspace records into — a
//! [`MetricRegistry`] of labeled counters, gauges, and log-linear
//! histograms ([`hist`]), with two byte-stable exporters ([`export`]):
//! Prometheus text exposition and a JSON snapshot.
//!
//! **Determinism is the contract.** Metrics measure *modeled* time and
//! seeded event streams, series iterate in sorted `(name, labels)` order,
//! and float formatting is fixed — so two identical seeded runs produce
//! bit-identical snapshots, which CI diffs directly. A metric here is as
//! reproducible as a checksum.
//!
//! Attachment follows the ambient pattern the sanitizer, memory trace,
//! span log and fault state established: a harness installs a registry
//! process-wide ([`install`]); while one is active, the substrate and the
//! serving layer record into it ([`active`]); with none installed the
//! hooks pay one relaxed atomic load. `ompx-hecbench`'s `ChaosSession`
//! installs a fresh registry per session, so every chaos and serve run is
//! metered without further wiring.
//!
//! Family naming: `sim_*` (launches, memcpys), `fault_*` (injections and
//! recoveries by kind/site), `sanitizer_findings_total` / `findings_total`
//! (findings by tool and severity), `serve_*` (queue, batching,
//! backpressure, per-tenant latency), `resilience_*` (breaker
//! transitions, hedges, spare promotions, deadline misses, brownout
//! shedding). [`describe_base_families`]
//! pre-declares all of them so a snapshot always shows the full surface,
//! including families that stayed at rest.

pub mod export;
pub mod hist;
pub mod percentile;
pub mod registry;

pub use export::{to_json, to_prometheus};
pub use hist::{LogLinearHistogram, DEFAULT_REL_ERR};
pub use percentile::percentile_interp;
pub use registry::{Labels, MetricKind, MetricRegistry, MetricValue, Sample, Snapshot};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cheap gate so un-metered runs pay one atomic load per hook.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE_REGISTRY: Mutex<Option<Arc<MetricRegistry>>> = Mutex::new(None);

/// The process-wide registry a harness installed, if any.
pub fn active() -> Option<Arc<MetricRegistry>> {
    if !METRICS_ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    ACTIVE_REGISTRY.lock().clone()
}

/// Install `reg` as the process-wide active registry. Returns the
/// previously installed registry, if any (callers are expected to
/// serialize metered runs, as `ompx-hecbench`'s session gate does).
pub fn install(reg: Arc<MetricRegistry>) -> Option<Arc<MetricRegistry>> {
    let prev = ACTIVE_REGISTRY.lock().replace(reg);
    METRICS_ENABLED.store(true, Ordering::Relaxed);
    prev
}

/// Remove and return the active registry.
pub fn uninstall() -> Option<Arc<MetricRegistry>> {
    METRICS_ENABLED.store(false, Ordering::Relaxed);
    ACTIVE_REGISTRY.lock().take()
}

/// Pre-declare every metric family the stack records, so exporters emit
/// the full surface (with `HELP`/`TYPE` headers) even for families a
/// particular run never touched — a fault-free serve snapshot still shows
/// the fault and sanitizer families at rest.
pub fn describe_base_families(reg: &MetricRegistry) {
    use MetricKind::{Counter, Gauge, Histogram};
    for (name, kind, help) in [
        ("sim_launches_total", Counter, "kernel launches executed by the simulator"),
        ("sim_launch_faults_total", Counter, "kernel launches failed by injection"),
        ("sim_memcpys_total", Counter, "memory transfers by direction"),
        ("sim_memcpy_bytes_total", Counter, "bytes moved by direction"),
        ("fault_injected_total", Counter, "fault episodes fired, by kind and site"),
        ("fault_recovered_total", Counter, "operations that failed then succeeded on retry"),
        ("fault_fallbacks_total", Counter, "target regions re-dispatched through host fallback"),
        ("fault_degraded_total", Counter, "operations completed unchecked past injection"),
        ("fault_sticky_total", Counter, "errors recorded as sticky device state"),
        ("sanitizer_findings_total", Counter, "dynamic sanitizer findings, by tool"),
        ("findings_total", Counter, "reported findings, by tool and severity"),
        ("serve_requests_total", Counter, "serve responses, by verdict, app, and version"),
        ("serve_shed_total", Counter, "requests shed by backpressure, by tenant"),
        ("serve_rehomed_total", Counter, "requests re-homed off a lost member"),
        ("serve_batches_total", Counter, "batches dispatched, by member and device kind"),
        ("serve_queue_depth", Gauge, "queued requests per member, as of last event"),
        ("serve_queue_depth_peak", Gauge, "high-water mark of the total backlog"),
        ("serve_busy_seconds", Gauge, "accumulated modeled busy seconds per member"),
        ("serve_batch_occupancy", Histogram, "requests coalesced per dispatched batch"),
        ("serve_latency_seconds", Histogram, "modeled request latency, by tenant"),
        ("serve_service_seconds", Histogram, "modeled batch service time, by app"),
        (
            "resilience_breaker_transitions_total",
            Counter,
            "circuit-breaker state changes, by member and edge",
        ),
        ("resilience_hedges_total", Counter, "hedged re-dispatches, by app and outcome"),
        ("resilience_spare_promotions_total", Counter, "warm spares promoted into the serving set"),
        (
            "resilience_deadline_miss_total",
            Counter,
            "completed requests that missed their deadline, by class",
        ),
        ("resilience_shed_total", Counter, "requests shed by the brownout ladder, by class"),
    ] {
        reg.describe(name, kind, help);
    }
}

/// Run `f` with a fresh registry installed, returning its result and the
/// snapshot. Test helper; does **not** hold the cross-harness run gate
/// (use `ompx-hecbench`'s session types for that).
pub fn with_metrics<R>(f: impl FnOnce() -> R) -> (R, Snapshot) {
    let reg = MetricRegistry::new();
    describe_base_families(&reg);
    let prev = install(Arc::clone(&reg));
    /// Uninstalls the ambient registry even if `f` panics.
    struct Uninstall(Option<Arc<MetricRegistry>>);
    impl Drop for Uninstall {
        fn drop(&mut self) {
            uninstall();
            if let Some(prev) = self.0.take() {
                install(prev);
            }
        }
    }
    let _guard = Uninstall(prev);
    let result = f();
    (result, reg.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_gates_the_ambient_hook() {
        let reg = MetricRegistry::new();
        let prev = install(Arc::clone(&reg));
        assert!(active().is_some());
        active().unwrap().counter_add("x_total", &[], 1);
        let got = uninstall().expect("a registry was installed");
        assert_eq!(got.snapshot().counter("x_total", &[]), 1);
        if let Some(p) = prev {
            install(p);
        }
    }

    #[test]
    fn with_metrics_scopes_a_fresh_registry() {
        let ((), snap) = with_metrics(|| {
            if let Some(reg) = active() {
                reg.counter_add("scoped_total", &[("k", "v")], 3);
            }
        });
        assert_eq!(snap.counter("scoped_total", &[("k", "v")]), 3);
        // Base families are pre-declared even though nothing recorded them.
        assert!(snap.families.contains_key("fault_injected_total"));
        assert!(snap.families.contains_key("serve_latency_seconds"));
    }

    #[test]
    fn base_families_render_in_both_exporters() {
        let reg = MetricRegistry::new();
        describe_base_families(&reg);
        let snap = reg.snapshot();
        let prom = to_prometheus(&snap);
        for family in [
            "sim_launches_total",
            "fault_injected_total",
            "sanitizer_findings_total",
            "serve_latency_seconds",
        ] {
            assert!(prom.contains(&format!("# TYPE {family}")), "missing {family}");
        }
        assert!(to_json(&snap).contains("\"schema\": \"ompx-metrics-v1\""));
    }
}
