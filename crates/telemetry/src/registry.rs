//! The metric registry: labeled counters, gauges, and log-linear
//! histograms behind one deterministic map.
//!
//! Every series is keyed by `(metric name, sorted label pairs)` in a
//! `BTreeMap`, so iteration — and therefore every exporter — is in one
//! stable order regardless of recording order. Values are either exact
//! integers (counters) or pure functions of the recorded modeled-time
//! quantities (gauges, histogram buckets), so two identical seeded runs
//! produce bit-identical snapshots.
//!
//! Metric *families* can be pre-declared with [`MetricRegistry::describe`]
//! so exporters emit their `HELP`/`TYPE` headers even when a run recorded
//! no samples for them — a fault-free serve run still shows the fault and
//! sanitizer families at rest, which is what makes snapshots comparable
//! across runs.

use crate::hist::{LogLinearHistogram, DEFAULT_REL_ERR};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Label pairs at a recording site (unsorted; the registry sorts by key).
pub type Labels<'a> = &'a [(&'a str, &'a str)];

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count (`u64`).
    Counter,
    /// Last-written (or accumulated) modeled value (`f64`).
    Gauge,
    /// Log-linear distribution of modeled values.
    Histogram,
}

impl MetricKind {
    /// Stable exporter label (Prometheus `TYPE` spelling; histograms are
    /// exported as quantile summaries).
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "summary",
        }
    }
}

/// One live series value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(LogLinearHistogram),
}

/// One series in a snapshot: resolved name, sorted labels, value.
#[derive(Debug, Clone)]
pub struct Sample {
    pub name: String,
    /// Sorted by label key (the series identity).
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

/// A point-in-time copy of the whole registry, in stable order.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `name → (kind, help)` for every described or recorded family.
    pub families: BTreeMap<String, (MetricKind, String)>,
    /// Every series, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// The sample for `(name, labels)`, if recorded (labels in any order).
    pub fn get(&self, name: &str, labels: Labels) -> Option<&MetricValue> {
        let key = sort_labels(labels);
        self.samples.iter().find(|s| s.name == name && s.labels == key).map(|s| &s.value)
    }

    /// Counter value for `(name, labels)`, defaulting to 0.
    pub fn counter(&self, name: &str, labels: Labels) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }
}

fn sort_labels(labels: Labels) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> =
        labels.iter().map(|(k, val)| (k.to_string(), val.to_string())).collect();
    v.sort();
    v
}

/// Series key: name plus sorted labels.
type Key = (String, Vec<(String, String)>);

/// A deterministic, thread-safe metric registry.
pub struct MetricRegistry {
    series: Mutex<BTreeMap<Key, MetricValue>>,
    families: Mutex<BTreeMap<String, (MetricKind, String)>>,
}

impl MetricRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Arc<MetricRegistry> {
        Arc::new(MetricRegistry {
            series: Mutex::new(BTreeMap::new()),
            families: Mutex::new(BTreeMap::new()),
        })
    }

    /// Declare a family so exporters emit it even when no samples exist.
    /// The first declaration of a name wins (recording auto-declares with
    /// an empty help string).
    pub fn describe(&self, name: &str, kind: MetricKind, help: &str) {
        self.families.lock().entry(name.to_string()).or_insert_with(|| (kind, help.to_string()));
    }

    fn note_family(&self, name: &str, kind: MetricKind) {
        self.families.lock().entry(name.to_string()).or_insert_with(|| (kind, String::new()));
    }

    /// Add `delta` to the counter series `(name, labels)`.
    pub fn counter_add(&self, name: &str, labels: Labels, delta: u64) {
        self.note_family(name, MetricKind::Counter);
        let mut series = self.series.lock();
        let entry = series
            .entry((name.to_string(), sort_labels(labels)))
            .or_insert(MetricValue::Counter(0));
        if let MetricValue::Counter(c) = entry {
            *c += delta;
        }
    }

    /// Set the gauge series `(name, labels)` to `v`.
    pub fn gauge_set(&self, name: &str, labels: Labels, v: f64) {
        self.with_gauge(name, labels, |g| *g = v);
    }

    /// Add `v` to the gauge series (modeled-seconds accumulators).
    pub fn gauge_add(&self, name: &str, labels: Labels, v: f64) {
        self.with_gauge(name, labels, |g| *g += v);
    }

    /// Raise the gauge series to `v` if `v` is larger (high-water marks).
    pub fn gauge_max(&self, name: &str, labels: Labels, v: f64) {
        self.with_gauge(name, labels, |g| *g = g.max(v));
    }

    fn with_gauge(&self, name: &str, labels: Labels, f: impl FnOnce(&mut f64)) {
        self.note_family(name, MetricKind::Gauge);
        let mut series = self.series.lock();
        let entry = series
            .entry((name.to_string(), sort_labels(labels)))
            .or_insert(MetricValue::Gauge(0.0));
        if let MetricValue::Gauge(g) = entry {
            f(g);
        }
    }

    /// Record `v` into the histogram series `(name, labels)` (created on
    /// first use with the default relative bucket error).
    pub fn hist_record(&self, name: &str, labels: Labels, v: f64) {
        self.hist_record_err(name, labels, v, DEFAULT_REL_ERR);
    }

    /// [`MetricRegistry::hist_record`] with an explicit relative bucket
    /// error (applies when the series is created).
    pub fn hist_record_err(&self, name: &str, labels: Labels, v: f64, rel_err: f64) {
        self.note_family(name, MetricKind::Histogram);
        let mut series = self.series.lock();
        let entry = series
            .entry((name.to_string(), sort_labels(labels)))
            .or_insert_with(|| MetricValue::Histogram(LogLinearHistogram::new(rel_err)));
        if let MetricValue::Histogram(h) = entry {
            h.record(v);
        }
    }

    /// Copy out every family and series in stable sorted order.
    pub fn snapshot(&self) -> Snapshot {
        let series = self.series.lock();
        let families = self.families.lock();
        Snapshot {
            families: families.clone(),
            samples: series
                .iter()
                .map(|((name, labels), value)| Sample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: value.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let reg = MetricRegistry::new();
        reg.counter_add("reqs", &[("tenant", "0")], 1);
        reg.counter_add("reqs", &[("tenant", "0")], 2);
        reg.counter_add("reqs", &[("tenant", "1")], 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("reqs", &[("tenant", "0")]), 3);
        assert_eq!(snap.counter("reqs", &[("tenant", "1")]), 5);
        assert_eq!(snap.counter("reqs", &[("tenant", "2")]), 0);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MetricRegistry::new();
        reg.counter_add("m", &[("a", "1"), ("b", "2")], 1);
        reg.counter_add("m", &[("b", "2"), ("a", "1")], 1);
        let snap = reg.snapshot();
        assert_eq!(snap.samples.len(), 1);
        assert_eq!(snap.counter("m", &[("b", "2"), ("a", "1")]), 2);
    }

    #[test]
    fn gauges_set_add_and_max() {
        let reg = MetricRegistry::new();
        reg.gauge_set("depth", &[], 4.0);
        reg.gauge_max("peak", &[], 4.0);
        reg.gauge_max("peak", &[], 2.0);
        reg.gauge_add("busy_s", &[], 1.5);
        reg.gauge_add("busy_s", &[], 2.5);
        let snap = reg.snapshot();
        assert!(matches!(snap.get("depth", &[]), Some(MetricValue::Gauge(g)) if *g == 4.0));
        assert!(matches!(snap.get("peak", &[]), Some(MetricValue::Gauge(g)) if *g == 4.0));
        assert!(matches!(snap.get("busy_s", &[]), Some(MetricValue::Gauge(g)) if *g == 4.0));
    }

    #[test]
    fn described_families_survive_into_empty_snapshots() {
        let reg = MetricRegistry::new();
        reg.describe("quiet_total", MetricKind::Counter, "never fired");
        let snap = reg.snapshot();
        assert!(snap.samples.is_empty());
        assert_eq!(
            snap.families.get("quiet_total"),
            Some(&(MetricKind::Counter, "never fired".to_string()))
        );
    }

    #[test]
    fn snapshot_order_is_independent_of_recording_order() {
        let fwd = MetricRegistry::new();
        fwd.counter_add("a_total", &[], 1);
        fwd.counter_add("b_total", &[("x", "1")], 1);
        fwd.counter_add("b_total", &[("x", "0")], 1);
        let rev = MetricRegistry::new();
        rev.counter_add("b_total", &[("x", "0")], 1);
        rev.counter_add("b_total", &[("x", "1")], 1);
        rev.counter_add("a_total", &[], 1);
        let (a, b) = (fwd.snapshot(), rev.snapshot());
        let keys = |s: &Snapshot| {
            s.samples.iter().map(|m| (m.name.clone(), m.labels.clone())).collect::<Vec<_>>()
        };
        assert_eq!(keys(&a), keys(&b));
    }
}
