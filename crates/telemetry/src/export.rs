//! Byte-stable exporters: Prometheus text exposition and a JSON snapshot.
//!
//! Both exporters walk a [`Snapshot`] in its stable sorted order and use
//! fixed float formatting (`{:e}`), so two identical seeded runs render
//! bit-identical documents — the property the CI determinism leg diffs.
//! Histograms export as Prometheus *summaries*: one `quantile`-labeled
//! sample per exported quantile plus `_sum` and `_count`, which is how a
//! log-linear sketch is conventionally surfaced.

use crate::registry::{MetricKind, MetricValue, Snapshot};

/// Quantiles exported per histogram series, in emission order:
/// `(quantile, Prometheus label value, JSON field name)`.
pub const EXPORT_QUANTILES: [(f64, &str, &str); 3] =
    [(0.5, "0.5", "p50"), (0.95, "0.95", "p95"), (0.99, "0.99", "p99")];

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render the snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, (kind, help)) in &snap.families {
        if !help.is_empty() {
            out.push_str(&format!("# HELP {name} {help}\n"));
        }
        out.push_str(&format!("# TYPE {name} {}\n", kind.label()));
        for s in snap.samples.iter().filter(|s| &s.name == name) {
            match &s.value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{name}{} {c}\n", label_block(&s.labels, None)));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("{name}{} {g:e}\n", label_block(&s.labels, None)));
                }
                MetricValue::Histogram(h) => {
                    for (q, tag, _) in EXPORT_QUANTILES {
                        out.push_str(&format!(
                            "{name}{} {:e}\n",
                            label_block(&s.labels, Some(("quantile", tag))),
                            h.quantile(q)
                        ));
                    }
                    let plain = label_block(&s.labels, None);
                    out.push_str(&format!("{name}_sum{plain} {:e}\n", h.sum()));
                    out.push_str(&format!("{name}_count{plain} {}\n", h.count()));
                }
            }
        }
    }
    out
}

/// Render the snapshot as the `ompx-metrics-v1` JSON document. Parseable
/// by the workspace's hand-rolled JSON reader (`ompx-prof::jsonio`).
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n  \"schema\": \"ompx-metrics-v1\",\n  \"metrics\": [\n");
    let mut first = true;
    for s in &snap.samples {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let kind = snap.families.get(&s.name).map(|(k, _)| *k).unwrap_or(match &s.value {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        });
        let labels = s
            .labels
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "    {{\"name\":\"{}\",\"type\":\"{}\",\"labels\":{{{labels}}},",
            escape(&s.name),
            kind.label()
        ));
        match &s.value {
            MetricValue::Counter(c) => out.push_str(&format!("\"value\":{c}}}")),
            MetricValue::Gauge(g) => out.push_str(&format!("\"value\":{g:e}}}")),
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "\"count\":{},\"sum\":{:e},\"min\":{:e},\"max\":{:e}",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max()
                ));
                for (q, _, field) in EXPORT_QUANTILES {
                    out.push_str(&format!(",\"{field}\":{:e}", h.quantile(q)));
                }
                out.push('}');
            }
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;

    fn sample_registry() -> std::sync::Arc<MetricRegistry> {
        let reg = MetricRegistry::new();
        reg.describe("fault_injected_total", MetricKind::Counter, "fault episodes fired");
        reg.counter_add("serve_requests_total", &[("verdict", "success")], 7);
        reg.gauge_set("serve_queue_depth", &[("member", "0")], 3.0);
        for i in 1..=100 {
            reg.hist_record("serve_latency_seconds", &[("tenant", "0")], i as f64 * 1e-3);
        }
        reg
    }

    #[test]
    fn prometheus_text_is_stable_and_typed() {
        let reg = sample_registry();
        let a = to_prometheus(&reg.snapshot());
        let b = to_prometheus(&reg.snapshot());
        assert_eq!(a, b);
        assert!(a.contains("# HELP fault_injected_total fault episodes fired"));
        assert!(a.contains("# TYPE fault_injected_total counter"));
        assert!(a.contains("# TYPE serve_latency_seconds summary"));
        assert!(a.contains("serve_requests_total{verdict=\"success\"} 7"));
        assert!(a.contains("serve_queue_depth{member=\"0\"} 3e0"));
        assert!(a.contains("serve_latency_seconds{tenant=\"0\",quantile=\"0.99\"}"));
        assert!(a.contains("serve_latency_seconds_count{tenant=\"0\"} 100"));
    }

    #[test]
    fn json_document_is_stable_and_tagged() {
        let reg = sample_registry();
        let a = to_json(&reg.snapshot());
        assert_eq!(a, to_json(&reg.snapshot()));
        assert!(a.contains("\"schema\": \"ompx-metrics-v1\""));
        assert!(a.contains("\"name\":\"serve_requests_total\",\"type\":\"counter\""));
        assert!(a.contains("\"type\":\"summary\""));
        assert!(a.contains("\"p95\":"));
    }

    #[test]
    fn empty_families_render_headers_only() {
        let reg = MetricRegistry::new();
        reg.describe("quiet_total", MetricKind::Counter, "");
        let text = to_prometheus(&reg.snapshot());
        assert_eq!(text, "# TYPE quiet_total counter\n");
    }
}
