//! The one percentile implementation the serving stack shares.
//!
//! Linear interpolation between closest ranks (the "exclusive" R-7 /
//! NumPy `linear` definition): for a sorted sample of size `n`, the
//! `p`-percentile sits at fractional rank `(n - 1) · p`, interpolating
//! between the two neighbouring order statistics. Both the serve report
//! and the load sweep call this, so their percentiles cannot diverge.

/// Interpolated percentile of an ascending-sorted slice. `p` is clamped
/// to `[0, 1]`. Empty input returns `0.0`; a single sample is every
/// percentile of itself.
pub fn percentile_interp(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 1.0);
    let rank = (sorted.len() - 1) as f64 * p;
    let lo = rank.floor() as usize;
    let hi = (lo + 1).min(sorted.len() - 1);
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_sample_edges() {
        assert_eq!(percentile_interp(&[], 0.5), 0.0);
        assert_eq!(percentile_interp(&[2.5], 0.0), 2.5);
        assert_eq!(percentile_interp(&[2.5], 0.99), 2.5);
        assert_eq!(percentile_interp(&[2.5], 1.0), 2.5);
    }

    #[test]
    fn interpolates_between_ranks() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile_interp(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile_interp(&v, 1.0) - 4.0).abs() < 1e-12);
        // Rank 1.5 → midway between 2.0 and 3.0.
        assert!((percentile_interp(&v, 0.5) - 2.5).abs() < 1e-12);
        // Rank 2.97 → 3.0 + 0.97 · (4.0 − 3.0).
        assert!((percentile_interp(&v, 0.99) - 3.97).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_p_clamps() {
        let v = [1.0, 5.0];
        assert_eq!(percentile_interp(&v, -1.0), 1.0);
        assert_eq!(percentile_interp(&v, 2.0), 5.0);
    }
}
