//! Log-linear (HDR/DDSketch-style) histograms with a bounded relative
//! quantile error.
//!
//! Buckets are geometric: bucket `i` covers `(γ^(i-1), γ^i]` with
//! `γ = (1 + ε) / (1 - ε)` for the configured relative error `ε`, and the
//! bucket's representative value `2·γ^i / (γ + 1)` (the harmonic midpoint)
//! is within `ε` relative error of *every* value the bucket can hold —
//! which is what makes a histogram quantile trustworthy without keeping
//! the samples. Values at or below [`MIN_TRACKABLE`] land in a dedicated
//! zero bucket represented exactly as `0.0`.
//!
//! The state is a sparse `BTreeMap` of bucket counts, so merging two
//! histograms is exact bucket-wise integer addition — recording the
//! concatenation of two sample streams and merging their histograms
//! produce identical bucket maps (the property tests pin this). All
//! iteration is in bucket order, so snapshots render deterministically.

use std::collections::BTreeMap;

/// Values at or below this magnitude (including zero and anything
/// negative, which a latency or occupancy metric never produces) are
/// recorded in the zero bucket and reported as exactly `0.0`.
pub const MIN_TRACKABLE: f64 = 1e-12;

/// Default relative bucket error for registry-created histograms: 1%.
pub const DEFAULT_REL_ERR: f64 = 0.01;

/// A mergeable log-linear histogram with bounded relative quantile error.
#[derive(Debug, Clone)]
pub struct LogLinearHistogram {
    rel_err: f64,
    gamma: f64,
    inv_log_gamma: f64,
    /// Sparse bucket counts for values above [`MIN_TRACKABLE`].
    buckets: BTreeMap<i32, u64>,
    /// Count of values at or below [`MIN_TRACKABLE`].
    zero_count: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogLinearHistogram {
    /// Empty histogram with relative bucket error `rel_err` (clamped to
    /// a sane `(0, 0.5]` range; the default is [`DEFAULT_REL_ERR`]).
    pub fn new(rel_err: f64) -> LogLinearHistogram {
        let rel_err = if rel_err > 0.0 { rel_err.min(0.5) } else { DEFAULT_REL_ERR };
        let gamma = (1.0 + rel_err) / (1.0 - rel_err);
        LogLinearHistogram {
            rel_err,
            gamma,
            inv_log_gamma: 1.0 / gamma.ln(),
            buckets: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative bucket error.
    pub fn rel_err(&self) -> f64 {
        self.rel_err
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() { v } else { 0.0 };
        if v <= MIN_TRACKABLE {
            self.zero_count += 1;
        } else {
            *self.buckets.entry(self.index_of(v)).or_insert(0) += 1;
        }
        self.count += 1;
        self.sum += v.max(0.0);
        self.min = self.min.min(v.max(0.0));
        self.max = self.max.max(v.max(0.0));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (negative inputs clamp to zero).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    fn index_of(&self, v: f64) -> i32 {
        (v.ln() * self.inv_log_gamma).ceil() as i32
    }

    fn value_of(&self, i: i32) -> f64 {
        2.0 * self.gamma.powi(i) / (self.gamma + 1.0)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by nearest rank over the bucket
    /// counts: within `rel_err` relative error of the exact nearest-rank
    /// percentile of the recorded samples. Returns `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zero_count;
        if rank <= seen {
            return 0.0;
        }
        for (&i, &c) in &self.buckets {
            seen += c;
            if rank <= seen {
                return self.value_of(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge `other` into `self`: exactly equivalent (bucket-wise) to
    /// having recorded both sample streams into one histogram. Panics if
    /// the relative errors differ — merged buckets would be meaningless.
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        assert!(
            (self.rel_err - other.rel_err).abs() < 1e-15,
            "cannot merge histograms with different bucket errors ({} vs {})",
            self.rel_err,
            other.rel_err
        );
        for (&i, &c) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += c;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The sparse bucket map (bucket index → count), for tests and
    /// merge-equivalence checks.
    pub fn bucket_counts(&self) -> (&BTreeMap<i32, u64>, u64) {
        (&self.buckets, self.zero_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogLinearHistogram::new(0.01);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = LogLinearHistogram::new(0.01);
        h.record(3.5);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = h.quantile(q);
            assert!((got - 3.5).abs() <= 0.01 * 3.5 + 1e-12, "q{q}: {got}");
        }
    }

    #[test]
    fn zero_and_negative_samples_report_exactly_zero() {
        let mut h = LogLinearHistogram::new(0.01);
        h.record(0.0);
        h.record(-1.0);
        h.record(5.0);
        assert_eq!(h.quantile(0.5), 0.0, "rank 2 of 3 is the second zero");
        assert!((h.quantile(1.0) - 5.0).abs() <= 0.05 + 1e-12);
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn quantiles_stay_within_relative_error_on_a_ladder() {
        let mut h = LogLinearHistogram::new(0.01);
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let got = h.quantile(q);
            assert!((got - exact).abs() <= 0.01 * exact + 1e-12, "q{q}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn merge_is_bucketwise_exact() {
        let mut a = LogLinearHistogram::new(0.01);
        let mut b = LogLinearHistogram::new(0.01);
        let mut both = LogLinearHistogram::new(0.01);
        for i in 0..100 {
            let v = 0.5 + i as f64 * 0.37;
            a.record(v);
            both.record(v);
        }
        for i in 0..77 {
            let v = 3.0 + i as f64 * 1.21;
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), both.bucket_counts());
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min().to_bits(), both.min().to_bits());
        assert_eq!(a.max().to_bits(), both.max().to_bits());
        assert_eq!(a.quantile(0.5).to_bits(), both.quantile(0.5).to_bits());
    }

    #[test]
    #[should_panic(expected = "different bucket errors")]
    fn merging_mismatched_errors_panics() {
        let mut a = LogLinearHistogram::new(0.01);
        let b = LogLinearHistogram::new(0.02);
        a.merge(&b);
    }
}
