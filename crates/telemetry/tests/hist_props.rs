//! Property tests pinning the histogram's two contracts: quantiles stay
//! within the configured relative error of the exact nearest-rank
//! percentile of the recorded samples, and merging two histograms is
//! exactly equivalent (bucket-wise, hence quantile-wise) to recording the
//! concatenated sample stream into one.

use ompx_telemetry::LogLinearHistogram;
use proptest::prelude::*;

/// Exact nearest-rank percentile of `samples` (the estimator the
/// histogram's `quantile` doc guarantees against).
fn nearest_rank(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_track_exact_percentiles(
        samples in proptest::collection::vec(1e-3f64..1e4, 1..400),
        q in 0.0f64..1.0,
    ) {
        let rel_err = 0.01;
        let mut h = LogLinearHistogram::new(rel_err);
        for &s in &samples {
            h.record(s);
        }
        let exact = nearest_rank(&samples, q);
        let got = h.quantile(q);
        // The 1.0001 factor absorbs float rounding when a sample lands
        // exactly on a bucket boundary; the bound is still ~rel_err.
        prop_assert!(
            (got - exact).abs() <= rel_err * exact * 1.0001 + 1e-12,
            "q={q}: got {got}, exact {exact} over {} samples",
            samples.len()
        );
    }

    #[test]
    fn merge_equals_concatenated_recording(
        a in proptest::collection::vec(1e-3f64..1e4, 0..200),
        b in proptest::collection::vec(1e-3f64..1e4, 0..200),
    ) {
        let mut ha = LogLinearHistogram::new(0.01);
        let mut hb = LogLinearHistogram::new(0.01);
        let mut concat = LogLinearHistogram::new(0.01);
        for &v in &a {
            ha.record(v);
            concat.record(v);
        }
        for &v in &b {
            hb.record(v);
            concat.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.bucket_counts(), concat.bucket_counts());
        prop_assert_eq!(ha.count(), concat.count());
        prop_assert_eq!(ha.min().to_bits(), concat.min().to_bits());
        prop_assert_eq!(ha.max().to_bits(), concat.max().to_bits());
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(ha.quantile(q).to_bits(), concat.quantile(q).to_bits());
        }
    }
}
