//! Streams via interop objects — the paper's Figure 5 (§3.5).
//!
//! ```c
//! omp_interop_t obj = omp_interop_none;
//! #pragma omp interop init(targetsync: obj)
//! #pragma omp target teams ompx_bare nowait depend(interopobj: obj)
//! { ... }
//! #pragma omp taskwait depend(interopobj: obj)
//! ```
//!
//! Two interop objects = two streams. A three-stage pipeline (scale →
//! offset → square) runs in-order inside each stream while the two streams
//! process independent halves concurrently; the final `taskwait
//! depend(interopobj:)` per object synchronizes.
//!
//! ```text
//! cargo run --example streams_interop
//! ```

use ompx::interop_depend::{launch_nowait_interopobj, taskwait_interopobj};
use ompx::prelude::*;

const N: usize = 32_768;
const BSIZE: u32 = 128;

fn stage(
    omp: &OpenMp,
    name: &str,
    buf: &ompx_sim::mem::DBuf<f32>,
    lo: usize,
    hi: usize,
    f: impl Fn(f32) -> f32 + Send + Sync + 'static,
) -> ompx::bare::PreparedBare {
    let teams = ((hi - lo) as u32).div_ceil(BSIZE);
    BareTarget::new(omp, name).num_teams([teams]).thread_limit([BSIZE]).prepare({
        let buf = buf.clone();
        move |tc| {
            let i = lo + tc.global_thread_id_x();
            if i < hi {
                let v = tc.read(&buf, i);
                tc.flops(1);
                tc.write(&buf, i, f(v));
            }
        }
    })
}

fn main() {
    println!("streams_interop: Figure 5 — depend(interopobj: obj)\n");
    let omp = ompx::runtime_nvidia();
    let data = omp.device().alloc_from(&vec![1.0f32; N]);

    // #pragma omp interop init(targetsync: obj) — twice, two streams.
    let obj_lo = InteropObj::init_targetsync(&omp);
    let obj_hi = InteropObj::init_targetsync(&omp);

    let half = N / 2;
    // Three dependent kernels per half; stream order is the only thing
    // sequencing them.
    for (label, obj, lo, hi) in [("lower", &obj_lo, 0, half), ("upper", &obj_hi, half, N)] {
        let k1 = stage(&omp, &format!("scale_{label}"), &data, lo, hi, |v| v * 3.0);
        let k2 = stage(&omp, &format!("offset_{label}"), &data, lo, hi, |v| v + 1.0);
        let k3 = stage(&omp, &format!("square_{label}"), &data, lo, hi, |v| v * v);
        // target teams ompx_bare nowait depend(interopobj: obj)
        launch_nowait_interopobj(&k1, obj);
        launch_nowait_interopobj(&k2, obj);
        launch_nowait_interopobj(&k3, obj);
    }

    // #pragma omp taskwait depend(interopobj: obj)
    taskwait_interopobj(&obj_lo);
    taskwait_interopobj(&obj_hi);

    // (1*3 + 1)^2 = 16 everywhere.
    let out = data.to_vec();
    assert!(out.iter().all(|&v| v == 16.0), "pipeline must compute (3v+1)^2");
    println!("both stream pipelines completed: data[0] = {}, data[N-1] = {}", out[0], out[N - 1]);
    println!(
        "modeled device-busy time: lower stream {:.1} us, upper stream {:.1} us",
        obj_lo.modeled_busy_seconds() * 1e6,
        obj_hi.modeled_busy_seconds() * 1e6
    );

    // The host-side alternative: nowait target tasks ordered by depend
    // clauses on data (the pre-extension mechanism, for contrast).
    let omp2 = ompx::runtime_nvidia();
    let buf = omp2.device().alloc::<f32>(N);
    let key = ompx_hostrt::DepKey::token(1);
    let producer =
        omp2.target("producer").num_teams(64).thread_limit(BSIZE).run_dpf_nowait(&[], &[key], N, {
            let buf = buf.clone();
            move |tc, i, _s| tc.write(&buf, i, i as f32)
        });
    let consumer =
        omp2.target("consumer").num_teams(64).thread_limit(BSIZE).run_dpf_nowait(&[key], &[], N, {
            let buf = buf.clone();
            move |tc, i, _s| {
                let v = tc.read(&buf, i);
                tc.write(&buf, i, v * 2.0);
            }
        });
    producer.wait().expect("producer");
    consumer.wait().expect("consumer");
    omp2.taskwait();
    assert_eq!(buf.get(100), 200.0);
    println!("\nhost task graph (depend in/out) also verified: buf[100] = {}", buf.get(100));
}
