//! Quickstart — the paper's Figure 1 and Figure 2, side by side.
//!
//! Figure 1 is a simple CUDA program: allocate, copy in, launch a kernel
//! over a 1-D grid, copy out. Figure 2 is its traditional OpenMP port with
//! `target teams` + `map` clauses + `parallel for`. This example runs both
//! against the simulated A100 and verifies they produce identical results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ompx_klang::cuda;
use ompx_sim::prelude::*;

const N: usize = 100_000;
const BSIZE: u32 = 128;

/// `use(a, b)` from the paper's listings.
#[inline]
fn use_fn(a: f32, b: f32) -> f32 {
    a * 2.0 + b
}

/// Figure 1: the CUDA program.
fn cuda_version(h_a: &[f32]) -> Vec<f32> {
    // Allocate device memory for the input and output.
    let ctx = cuda::cuda_context_clang();
    let d_a = ctx.malloc::<f32>(N);
    let d_b = ctx.malloc::<f32>(N);

    // Copy inputs to device.
    ctx.memcpy_h2d(&d_a, h_a);

    // __global__ void kernel(int *a, int *b, int n) with a __shared__ tile
    // initialized by thread 0.
    let mut cfg = LaunchConfig::linear(N, BSIZE);
    let slot = cfg.shared_array::<f32>(BSIZE as usize);
    let kernel = Kernel::with_flags(
        "quickstart_kernel",
        KernelFlags { uses_block_sync: true, uses_warp_ops: false },
        {
            let (a, b) = (d_a.clone(), d_b.clone());
            move |tc: &mut ThreadCtx<'_>| {
                let shared = tc.shared::<f32>(slot);
                let tid = tc.thread_id_x();
                if tid == 0 {
                    // initialize shared
                    for i in 0..BSIZE as usize {
                        tc.swrite(&shared, i, i as f32 * 0.5);
                    }
                }
                tc.sync_threads(); // __syncthreads()
                let idx = tc.block_id_x() * tc.block_dim_x() + tid;
                if idx < N {
                    let av = tc.read(&a, idx);
                    let sv = tc.sread(&shared, tid);
                    tc.flops(2);
                    tc.write(&b, idx, use_fn(av, sv));
                }
            }
        },
    );

    // kernel<<<gsize, bsize>>>(d_a, d_b, n);
    let result = ctx.launch_cfg(&kernel, cfg).expect("launch failed");
    println!(
        "  [cuda] kernel ran {} threads, modeled {:.1} us",
        result.stats.threads_executed,
        result.modeled.seconds * 1e6
    );

    // Copy output back to host; cudaDeviceSynchronize().
    let mut h_b = vec![0.0f32; N];
    ctx.memcpy_d2h(&mut h_b, &d_b);
    ctx.device_synchronize();
    ctx.free(&d_a);
    ctx.free(&d_b);
    h_b
}

/// Figure 2: the traditional OpenMP port.
fn omp_version(h_a: &[f32]) -> Vec<f32> {
    use ompx_hostrt::OpenMp;
    let omp = OpenMp::nvidia_system();

    // map(to: a[0:n]) map(from: b[0:n]) through the data environment.
    let env = omp.target_data();
    let d_a = env.map_to_f32(h_a);
    let d_b = env.target_alloc::<f32>(N);

    let gsize = (N as u32).div_ceil(BSIZE);
    // #pragma omp target teams num_teams(gsize) thread_limit(bsize)
    //   { ... #pragma omp parallel for ... }
    let result = omp
        .target("quickstart_kernel")
        .num_teams(gsize)
        .thread_limit(BSIZE)
        .run_distribute_parallel_for(N, {
            let (a, b) = (d_a.clone(), d_b.clone());
            move |tc, i, _s| {
                let av = tc.read(&a, i);
                let sv = (i % BSIZE as usize) as f32 * 0.5;
                tc.flops(2);
                tc.write(&b, i, use_fn(av, sv));
            }
        })
        .expect("target region failed");
    println!(
        "  [omp]  {} mode, modeled {:.1} us",
        result.plan.mode.label(),
        result.modeled.seconds * 1e6
    );

    let mut h_b = vec![0.0f32; N];
    env.target_memcpy_from(&mut h_b, &d_b);
    h_b
}

fn main() {
    println!("quickstart: Figure 1 (CUDA) vs Figure 2 (traditional OpenMP)\n");
    let h_a: Vec<f32> = (0..N).map(|i| (i % 1000) as f32 * 0.001).collect();

    let from_cuda = cuda_version(&h_a);
    let from_omp = omp_version(&h_a);

    assert_eq!(from_cuda, from_omp, "the two ports must agree bit-for-bit");
    println!("\nresults identical across the two programming models ({} elements)", N);
    println!("sample: b[0]={}, b[{}]={}", from_cuda[0], N - 1, from_cuda[N - 1]);
}
