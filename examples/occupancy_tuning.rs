//! Occupancy tuning — the performance mechanism behind Figure 8a/8b/8g/8h.
//!
//! The paper explains most of its results through *register pressure →
//! occupancy*: XSBench's `ompx` win comes from tighter register
//! allocation, RSBench's `omp` version pays for its 162 registers. This
//! example drives that mechanism directly:
//!
//! 1. the `cudaOccupancyMaxActiveBlocksPerMultiprocessor`-style API over
//!    the codegen database;
//! 2. a latency-bound kernel modeled at several register budgets, showing
//!    the modeled time tracking occupancy;
//! 3. a constant-memory lookup table (the §2.5 memory space the others
//!    examples don't touch) in the kernel.
//!
//! ```text
//! cargo run --release --example occupancy_tuning
//! ```

use ompx_klang::cuda::cuda_context_clang;
use ompx_klang::toolchain::Toolchain;
use ompx_sim::prelude::*;

const N: usize = 1 << 16;
const BLOCK: u32 = 256;

fn main() {
    println!("occupancy_tuning: registers -> occupancy -> latency-bound performance\n");
    let ctx = cuda_context_clang();

    // A random-gather kernel with a constant-memory coefficient table.
    let table =
        ctx.memcpy_to_symbol(&(0..64).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect::<Vec<_>>());
    let src = ctx.malloc_from(&(0..N).map(|i| i as f64).collect::<Vec<_>>());
    let dst = ctx.malloc::<f64>(N);

    let kernel = Kernel::new("gather", {
        let (table, src, dst) = (table.clone(), src.clone(), dst.clone());
        move |tc: &mut ThreadCtx<'_>| {
            let i = tc.global_thread_id_x();
            if i < N {
                // Pseudo-random gather (latency-bound access pattern).
                let j = (i.wrapping_mul(2654435761)) % N;
                let v = tc.read(&src, j);
                let c = tc.cread(&table, i % 64);
                tc.flops(2);
                tc.write(&dst, i, v * c);
            }
        }
    });
    let r = ctx.launch_cfg(&kernel, LaunchConfig::linear(N, BLOCK)).expect("launch");
    println!(
        "functional run: {} const reads, {} global bytes\n",
        r.stats.const_reads,
        r.stats.global_bytes()
    );

    println!("{:>10} {:>14} {:>12} {:>14}", "registers", "blocks/SM", "occupancy", "modeled (us)");
    let mut last = f64::INFINITY;
    for regs in [24u32, 40, 64, 96, 128, 192, 255] {
        ctx.codegen().set(
            "gather",
            Toolchain::Clang,
            CodegenInfo { regs_per_thread: regs, coalescing: 0.2, ..CodegenInfo::default() },
        );
        let blocks = ctx.occupancy_max_active_blocks("gather", BLOCK, 0);
        let occ = ompx_sim::timing::occupancy(ctx.device().profile(), BLOCK, regs, 0);
        let modeled = ctx.model("gather", BLOCK, 0, &r.stats);
        println!(
            "{:>10} {:>14} {:>12.3} {:>14.2}",
            regs,
            blocks,
            occ.occupancy,
            modeled.seconds * 1e6
        );
        assert!(
            modeled.seconds >= last * 0.999 || occ.occupancy >= 0.999,
            "more registers must not speed up a latency-bound kernel"
        );
        last = modeled.seconds.min(last);
    }
    println!("\nfewer registers -> more resident warps -> more loads in flight:");
    println!("exactly how the ompx prototype wins XSBench (Figure 8a/8g).");
}
