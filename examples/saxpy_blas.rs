//! Vendor-library wrapper — the paper's §3.6.
//!
//! "This layer boasts function signatures similar to those in vendor
//! libraries … Under the hood, this wrapper layer invokes the appropriate
//! vendor library based on the offloading target determined at compile
//! time."
//!
//! The *same program text* below runs on the NVIDIA system (dispatching to
//! the simulated cuBLAS) and on the AMD system (simulated rocBLAS):
//! axpy, dot, and a small gemm, verified against host references.
//!
//! ```text
//! cargo run --example saxpy_blas
//! ```

use ompx::blas;
use ompx::OpenMp;

const N: usize = 10_000;

fn run_on(name: &str, omp: &OpenMp) {
    println!("== {name}: vendor BLAS via the ompx wrapper ==");

    // y = 2.5 x + y
    let x = omp.device().alloc_from(&(0..N).map(|i| (i % 100) as f32).collect::<Vec<_>>());
    let y = omp.device().alloc_from(&vec![1.0f32; N]);
    let r = blas::axpy(omp, 2.5, &x, &y);
    println!("  axpy: {} flops counted, modeled {:.2} us", r.stats.flops, r.modeled.seconds * 1e6);
    let hy = y.to_vec();
    for (i, v) in hy.iter().enumerate().take(200) {
        assert_eq!(*v, 2.5 * (i % 100) as f32 + 1.0);
    }

    // dot(x, y)
    let (d, _) = blas::dot(omp, &x, &y);
    let expect: f64 = (0..N)
        .map(|i| {
            let xv = (i % 100) as f32;
            (xv * (2.5 * xv + 1.0)) as f64
        })
        .sum();
    assert!((d - expect).abs() / expect < 1e-9, "dot {d} vs host {expect}");
    println!("  dot : {d:.1} (host reference {expect:.1})");

    // C = A x B for a 64x64 matrix pair.
    let m = 64;
    let a =
        omp.device().alloc_from(&(0..m * m).map(|i| ((i % 7) as f32) - 3.0).collect::<Vec<_>>());
    let b =
        omp.device().alloc_from(&(0..m * m).map(|i| ((i % 5) as f32) - 2.0).collect::<Vec<_>>());
    let c = omp.device().alloc::<f32>(m * m);
    blas::gemm(omp, m, m, m, 1.0, &a, &b, 0.0, &c);
    // Host reference for one element.
    let (ha, hb, hc) = (a.to_vec(), b.to_vec(), c.to_vec());
    let (i, j) = (5, 9);
    let expect: f32 = (0..m).map(|k| ha[i * m + k] * hb[k * m + j]).sum();
    assert_eq!(hc[i * m + j], expect);
    println!("  gemm: C[{i}][{j}] = {} (host reference {expect})\n", hc[i * m + j]);
}

fn main() {
    println!("saxpy_blas: one wrapper call site, two vendor libraries (Section 3.6)\n");
    run_on("NVIDIA A100 -> cuBLAS (simulated)", &ompx::runtime_nvidia());
    run_on("AMD MI250  -> rocBLAS (simulated)", &ompx::runtime_amd());
    println!("identical program text dispatched to both vendors' libraries.");
}
