//! SIMT-style OpenMP — the paper's Figure 3 vs Figure 4.
//!
//! Figure 3 writes the target region in SIMT style with standard OpenMP
//! (`target teams` + `parallel`, manual index math) — possible, but the
//! device runtime is still initialized and locals are globalized.
//! Figure 4 is the paper's contribution: the same code under `ompx_bare`,
//! "bare metal" mode — no runtime, no globalization, all threads active.
//!
//! This example runs both, checks they agree, and prints the modeled cost
//! difference — the per-kernel overhead the `ompx_bare` clause removes.
//!
//! ```text
//! cargo run --example simt_port
//! ```

use ompx::prelude::*;
use ompx_hostrt::OpenMp;

const N: usize = 65_536;
const BSIZE: u32 = 128;

fn main() {
    println!("simt_port: Figure 3 (SIMT via target teams parallel) vs Figure 4 (ompx_bare)\n");
    let gsize = (N as u32).div_ceil(BSIZE);

    // ---- Figure 3: SIMT style through the traditional runtime ------------
    let omp = OpenMp::nvidia_system();
    let a3 = omp.device().alloc_from(&(0..N).map(|i| i as f32).collect::<Vec<_>>());
    let b3 = omp.device().alloc::<f32>(N);
    let fig3 = omp
        .target("simt_region")
        .num_teams(gsize)
        .thread_limit(BSIZE)
        .run_distribute_parallel_for(N, {
            let (a, b) = (a3.clone(), b3.clone());
            move |tc, id, _s| {
                // int id = blockId * blockDim + threadId; (Figure 3)
                let v = tc.read(&a, id);
                tc.flops(1);
                tc.write(&b, id, v + 1.0);
            }
        })
        .expect("figure-3 region");

    // ---- Figure 4: the same region, ompx_bare -----------------------------
    let ompx_rt = ompx::runtime_nvidia();
    let a4 = ompx_rt.device().alloc_from(&(0..N).map(|i| i as f32).collect::<Vec<_>>());
    let b4 = ompx_rt.device().alloc::<f32>(N);
    let fig4 = BareTarget::new(&ompx_rt, "simt_region")
        .num_teams([gsize])
        .thread_limit([BSIZE])
        .launch({
            let (a, b) = (a4.clone(), b4.clone());
            move |tc| {
                // All threads in all teams/blocks are active. (Figure 4)
                let id = ompx_block_id_x(tc) * ompx_block_dim_x(tc) + ompx_thread_id_x(tc);
                if id < N {
                    let v = tc.read(&a, id);
                    tc.flops(1);
                    tc.write(&b, id, v + 1.0);
                }
            }
        })
        .expect("figure-4 region");

    assert_eq!(b3.to_vec(), b4.to_vec(), "both styles must compute the same result");

    println!(
        "figure 3 (omp, {} mode): modeled {:9.2} us/kernel",
        fig3.plan.mode.label(),
        fig3.modeled.seconds * 1e6
    );
    println!("figure 4 (ompx_bare):    modeled {:9.2} us/kernel", fig4.modeled.seconds * 1e6);
    println!(
        "\nompx_bare removes {:.2} us of per-kernel runtime overhead ({:.1}%)",
        (fig3.modeled.seconds - fig4.modeled.seconds) * 1e6,
        (1.0 - fig4.modeled.seconds / fig3.modeled.seconds) * 100.0
    );

    // ---- multi-dimensional geometry (§3.2) --------------------------------
    let grid2d =
        BareTarget::new(&ompx_rt, "simt_2d").num_teams([64u32, 32]).thread_limit([16u32, 8]);
    let (g, b) = grid2d.geometry();
    println!(
        "\nmulti-dim launch (Section 3.2): num_teams({},{}) thread_limit({},{})",
        g.x, g.y, b.x, b.y
    );
    let hits = ompx_rt.device().alloc::<u32>(1);
    grid2d
        .launch({
            let hits = hits.clone();
            move |tc| {
                // Every thread of the 2-D grid is live.
                let _gx = ompx_grid_dim_x(tc);
                tc.atomic_add(&hits, 0, 1);
            }
        })
        .expect("2-D launch");
    println!("2-D grid executed {} threads", hits.get(0));
    assert_eq!(hits.get(0) as usize, 64 * 32 * 16 * 8);
}
