//! Heat diffusion with `groupprivate` shared tiles — a domain application
//! of the §3.1/§3.3 extensions, and a live demonstration of *why* bare
//! mode matters (the §4.2.6 mechanism).
//!
//! A 1-D rod with hot ends diffuses heat by repeated 3-point averaging.
//! Three implementations, identical physics:
//!
//! * `ompx_bare` with a shared tile + `ompx_sync_thread_block` (Figure 4
//!   style, what the paper ports CUDA stencils to);
//! * traditional OpenMP, SPMD lowering;
//! * traditional OpenMP forced into generic mode (what LLVM actually did
//!   to the HeCBench stencil, per §4.2.6).
//!
//! ```text
//! cargo run --example stencil_heat
//! ```

use ompx::prelude::*;
use ompx_hostrt::{OpenMp, QuirkSet};
use ompx_sim::mem::DBuf;

const N: usize = 8_192;
const BLOCK: usize = 128;
const STEPS: usize = 50;

fn init_rod(omp: &OpenMp) -> (DBuf<f64>, DBuf<f64>) {
    let mut rod = vec![0.0f64; N];
    rod[0] = 100.0;
    rod[N - 1] = 100.0;
    (omp.device().alloc_from(&rod), omp.device().alloc_from(&rod))
}

fn diffuse_body(tc: &mut ThreadCtx<'_>, input: &DBuf<f64>, output: &DBuf<f64>, i: usize) {
    if i == 0 || i == N - 1 {
        tc.write(output, i, 100.0); // fixed boundary condition
        return;
    }
    let l = tc.read(input, i - 1);
    let c = tc.read(input, i);
    let r = tc.read(input, i + 1);
    tc.flops(4);
    tc.write(output, i, c + 0.25 * (l - 2.0 * c + r));
}

/// The ompx_bare version: shared tile + block barrier.
fn run_bare(omp: &OpenMp) -> (Vec<f64>, f64) {
    let (mut a, mut b) = init_rod(omp);
    let mut modeled = 0.0;
    for _ in 0..STEPS {
        let mut target = BareTarget::new(omp, "heat_bare")
            .num_teams([(N / BLOCK) as u32])
            .thread_limit([BLOCK as u32])
            .uses_block_sync();
        let tile = target.shared_array::<f64>(BLOCK + 2);
        let r = target
            .launch({
                let (input, output) = (a.clone(), b.clone());
                move |tc| {
                    let t = tc.thread_rank();
                    let i = ompx_block_id_x(tc) * BLOCK + t;
                    let tl = tc.shared::<f64>(tile);
                    // Stage interior + halos (clamped).
                    let v = tc.read(&input, i.min(N - 1));
                    tc.swrite(&tl, t + 1, v);
                    if t == 0 {
                        let left = i.saturating_sub(1);
                        let v = tc.read(&input, left);
                        tc.swrite(&tl, 0, v);
                        let right = (ompx_block_id_x(tc) * BLOCK + BLOCK).min(N - 1);
                        let v = tc.read(&input, right);
                        tc.swrite(&tl, BLOCK + 1, v);
                    }
                    ompx_sync_thread_block(tc);
                    if i == 0 || i == N - 1 {
                        tc.write(&output, i, 100.0);
                    } else if i < N {
                        let l = tc.sread(&tl, t);
                        let c = tc.sread(&tl, t + 1);
                        let r = tc.sread(&tl, t + 2);
                        tc.flops(4);
                        tc.write(&output, i, c + 0.25 * (l - 2.0 * c + r));
                    }
                }
            })
            .expect("bare heat step");
        modeled += r.modeled.seconds;
        std::mem::swap(&mut a, &mut b);
    }
    (a.to_vec(), modeled)
}

/// The traditional OpenMP version; `kernel_name` picks the quirk (and thus
/// the execution mode).
fn run_omp(omp: &OpenMp, kernel_name: &str) -> (Vec<f64>, f64, &'static str) {
    let (mut a, mut b) = init_rod(omp);
    let mut modeled = 0.0;
    let mut mode = "?";
    for _ in 0..STEPS {
        let r = omp
            .target(kernel_name)
            .num_teams((N / BLOCK) as u32)
            .thread_limit(BLOCK as u32)
            .run_distribute_parallel_for(N, {
                let (input, output) = (a.clone(), b.clone());
                move |tc, i, _s| diffuse_body(tc, &input, &output, i)
            })
            .expect("omp heat step");
        modeled += r.modeled.seconds;
        mode = r.plan.mode.label();
        std::mem::swap(&mut a, &mut b);
    }
    (a.to_vec(), modeled, mode)
}

fn main() {
    println!("stencil_heat: {N}-cell rod, {STEPS} diffusion steps\n");

    let ompx_rt = ompx::runtime_nvidia();
    let (heat_bare, t_bare) = run_bare(&ompx_rt);

    let omp_rt = OpenMp::nvidia_system();
    let (heat_spmd, t_spmd, m_spmd) = run_omp(&omp_rt, "heat_plain");
    omp_rt.quirks().set("heat_generic", QuirkSet { force_generic: true, ..Default::default() });
    let (heat_gen, t_gen, m_gen) = run_omp(&omp_rt, "heat_generic");

    // Physics agreement (the tile staging is bit-identical to direct reads).
    assert_eq!(heat_bare, heat_spmd);
    assert_eq!(heat_bare, heat_gen);

    // Physics sanity: heat flows inward, profile is symmetric.
    assert_eq!(heat_bare[0], 100.0);
    assert!(heat_bare[1] > heat_bare[N / 4]);
    assert!((heat_bare[10] - heat_bare[N - 11]).abs() < 1e-9);
    println!(
        "temperature profile: end={:.2}  x=8: {:.4}  centre={:.6}",
        heat_bare[0],
        heat_bare[8],
        heat_bare[N / 2]
    );

    println!("\nmodeled totals for {STEPS} steps:");
    println!("  ompx_bare (shared tile):     {:9.1} us", t_bare * 1e6);
    println!("  omp, {m_spmd} lowering:          {:9.1} us", t_spmd * 1e6);
    println!("  omp, {m_gen} lowering:       {:9.1} us", t_gen * 1e6);
    println!(
        "\ngeneric-mode state machine costs {:.1}x over bare — the Section 4.2.6 pathology.",
        t_gen / t_bare
    );
    assert!(t_gen > t_spmd && t_spmd > t_bare);
}
