//! Repeated-run bit-identity under the parallel executor.
//!
//! The simulator's contract is that results, memory traces, and sanitizer
//! findings are byte-stable across runs and across worker counts: blocks
//! may execute on any OS thread in any order, but every cross-thread
//! combination (float reductions, trace merges, diagnostic ordering)
//! happens in canonical block-linear order. These tests pin the contract
//! with workloads chosen to expose ordering bugs — non-associative float
//! sums over catastrophic-cancellation inputs, and a barrier-heavy
//! benchmark cell traced end to end.
//!
//! Every test forces the same fixed worker count (the tests in this
//! binary may run concurrently and the override is process-global), and
//! serial references use the per-device knob, which takes precedence.

use ompx_hecbench::{run_app, with_mem_trace_full, ProgVersion, System, WorkScale};
use ompx_klang::blaslib::{sdot, BlasVendor};
use ompx_klang::cuda::cuda_context_clang;
use ompx_sanitizer::fixtures;
use ompx_sim::exec;
use ompx_sim::memtrace::{BarrierEvent, MemEvent, MemSpace};
use std::sync::Mutex;

/// Bit-identity is claimed for *every* run, so probe more than once or
/// twice: scheduling races are flaky by nature.
const RUNS: usize = 5;

/// Worker count every test in this binary runs under. More workers than
/// this host has cores is fine — oversubscription only makes the OS
/// interleaving less predictable, which is the point.
const WORKERS: usize = 4;

/// Serializes the tests: `exec::set_global_workers` is process-global.
static WORKER_GATE: Mutex<()> = Mutex::new(());

/// Canonical bytes of a trace. Allocation ids come from a process-global
/// counter and differ between runs by construction, so they are
/// renumbered in first-appearance order before serializing.
fn canonical_trace(mut events: Vec<MemEvent>, barriers: Vec<BarrierEvent>) -> String {
    let mut dense: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for e in &mut events {
        if let MemSpace::Global { alloc_id, .. } = &mut e.space {
            let next = dense.len();
            *alloc_id = *dense.entry(*alloc_id).or_insert(next);
        }
    }
    let mut out = String::new();
    for e in &events {
        out.push_str(&format!("{e:?}\n"));
    }
    for b in &barriers {
        out.push_str(&format!("{b:?}\n"));
    }
    out
}

/// Large-magnitude, sign-alternating inputs: the f64 partial sums lose
/// different low bits under every re-association, so any scheduler-order
/// dependence in the reduction shows up as checksum drift.
fn cancellation_inputs(n: usize) -> (Vec<f32>, Vec<f32>) {
    let xs: Vec<f32> = (0..n)
        .map(|i| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            sign * (1.0e8 + (i as f32) * 0.731)
        })
        .collect();
    let ys: Vec<f32> = (0..n).map(|i| 1.0 + (i % 13) as f32 * 0.0625).collect();
    (xs, ys)
}

#[test]
fn sdot_is_bit_identical_across_runs_and_worker_counts() {
    let _gate = WORKER_GATE.lock().unwrap_or_else(|e| e.into_inner());
    exec::set_global_workers(Some(WORKERS));
    let n = 8192;
    let (xs, ys) = cancellation_inputs(n);

    // Reference serial run: the per-device knob beats the global override.
    let reference = {
        let ctx = cuda_context_clang();
        ctx.device().set_sim_workers(Some(1));
        let x = ctx.malloc_from(&xs);
        let y = ctx.malloc_from(&ys);
        sdot(BlasVendor::Cublas, &ctx, &x, &y).0
    };

    for run in 0..RUNS {
        let ctx = cuda_context_clang();
        let x = ctx.malloc_from(&xs);
        let y = ctx.malloc_from(&ys);
        let (dot, _) = sdot(BlasVendor::Cublas, &ctx, &x, &y);
        assert_eq!(
            dot.to_bits(),
            reference.to_bits(),
            "run {run} at {WORKERS} workers: {dot:?} != serial reference {reference:?}"
        );
    }
    exec::set_global_workers(None);
}

#[test]
fn barrier_heavy_cell_trace_and_checksum_are_bit_identical() {
    let _gate = WORKER_GATE.lock().unwrap_or_else(|e| e.into_inner());
    exec::set_global_workers(Some(WORKERS));
    let mut reference: Option<(u64, String)> = None;
    for run in 0..RUNS {
        // The native stencil is the barrier-heavy version: a shared-memory
        // tile staged behind `sync_threads`, so the trace has all three
        // event kinds (global, shared, barrier) crossing the merge.
        let (outcome, events, barriers) = with_mem_trace_full(|| {
            run_app("stencil", System::Nvidia, ProgVersion::Native, WorkScale::Test)
        });
        assert!(!events.is_empty(), "trace hook recorded nothing");
        assert!(!barriers.is_empty(), "expected a barrier-heavy kernel");
        let bytes = canonical_trace(events, barriers);
        match &reference {
            None => reference = Some((outcome.checksum, bytes)),
            Some((checksum, trace)) => {
                assert_eq!(outcome.checksum, *checksum, "checksum drift on run {run}");
                assert_eq!(&bytes, trace, "memtrace byte drift on run {run}");
            }
        }
    }
    exec::set_global_workers(None);
}

#[test]
fn sanitizer_finding_order_is_bit_identical() {
    let _gate = WORKER_GATE.lock().unwrap_or_else(|e| e.into_inner());
    exec::set_global_workers(Some(WORKERS));
    let (run_fixture, _) = fixtures::by_name("shared-race").expect("known fixture");
    let reference = run_fixture().to_json();
    assert!(reference.contains("racecheck"), "fixture produced no findings");
    for run in 1..RUNS {
        let report = run_fixture().to_json();
        assert_eq!(report, reference, "finding-order drift on run {run}");
    }
    exec::set_global_workers(None);
}
