//! Integration test: the DESIGN.md "shape targets" table for Figure 8.
//!
//! The reproduction's contract with the paper is *shape*, not absolute
//! numbers: who wins, by roughly what factor, where the pathologies are.
//! Every row of the table in DESIGN.md §3 is asserted here against the
//! public `ompx-hecbench` API at test scale (the orderings are identical
//! at default scale; see EXPERIMENTS.md for those numbers).

use ompx_hecbench::{run_app, ProgVersion, System, WorkScale};

fn t(app: &str, sys: System, v: ProgVersion) -> f64 {
    run_app(app, sys, v, WorkScale::Test).reported_seconds
}

#[test]
fn xsbench_ompx_beats_native_everywhere_and_omp_is_excluded() {
    for sys in [System::Nvidia, System::Amd] {
        let ompx = t("xsbench", sys, ProgVersion::Ompx);
        let native = t("xsbench", sys, ProgVersion::Native);
        let vendor = t("xsbench", sys, ProgVersion::NativeVendor);
        assert!(ompx < native, "{}: {ompx} !< {native}", sys.label());
        assert!(ompx < vendor);
    }
    assert!(run_app("xsbench", System::Nvidia, ProgVersion::Omp, WorkScale::Test).excluded);
    assert!(run_app("xsbench", System::Amd, ProgVersion::Omp, WorkScale::Test).excluded);
}

#[test]
fn rsbench_orderings() {
    // A100: ompx < omp < cuda (omp beats cuda via heap-to-shared).
    let ompx = t("rsbench", System::Nvidia, ProgVersion::Ompx);
    let omp = t("rsbench", System::Nvidia, ProgVersion::Omp);
    let cuda = t("rsbench", System::Nvidia, ProgVersion::Native);
    assert!(ompx < omp && omp < cuda, "A100 rsbench: {ompx} {omp} {cuda}");
    // MI250: ompx < hip, and omp is the slowest series.
    let ompx = t("rsbench", System::Amd, ProgVersion::Ompx);
    let omp = t("rsbench", System::Amd, ProgVersion::Omp);
    let hip = t("rsbench", System::Amd, ProgVersion::Native);
    assert!(ompx < hip && hip < omp, "MI250 rsbench: {ompx} {hip} {omp}");
}

#[test]
fn su3_crossover_between_vendors() {
    // The headline crossover: ompx loses ~9 % on the A100 but wins ~28 %
    // on the MI250 — performance portability with one source.
    let nv =
        t("su3", System::Nvidia, ProgVersion::Ompx) / t("su3", System::Nvidia, ProgVersion::Native);
    assert!((1.03..1.20).contains(&nv), "A100 ompx/cuda ratio {nv} not ~1.09");
    let amd = t("su3", System::Amd, ProgVersion::Native) / t("su3", System::Amd, ProgVersion::Ompx);
    assert!((1.15..1.50).contains(&amd), "MI250 hip/ompx ratio {amd} not ~1.28");
}

#[test]
fn aidw_is_a_wash() {
    // MI250: spread under 25 % across all four versions.
    let times: Vec<f64> = ProgVersion::all().iter().map(|v| t("aidw", System::Amd, *v)).collect();
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    assert!(max / min < 1.25, "AMD aidw spread: {times:?}");
    // A100: ompx ~ cuda-nvcc, a few percent behind clang-cuda.
    let ompx = t("aidw", System::Nvidia, ProgVersion::Ompx);
    let cuda = t("aidw", System::Nvidia, ProgVersion::Native);
    let nvcc = t("aidw", System::Nvidia, ProgVersion::NativeVendor);
    assert!((1.01..1.20).contains(&(ompx / cuda)));
    assert!((0.9..1.1).contains(&(ompx / nvcc)));
}

#[test]
fn adam_32_thread_bug() {
    for sys in [System::Nvidia, System::Amd] {
        let omp = t("adam", sys, ProgVersion::Omp);
        let native = t("adam", sys, ProgVersion::Native);
        let ratio = omp / native;
        assert!(
            (4.0..30.0).contains(&ratio),
            "{}: adam omp/native ratio {ratio} outside the order-of-magnitude band",
            sys.label()
        );
    }
    // ompx matches native on NVIDIA, beats HIP on AMD.
    let nv = t("adam", System::Nvidia, ProgVersion::Ompx)
        / t("adam", System::Nvidia, ProgVersion::Native);
    assert!((0.9..1.1).contains(&nv));
    let amd =
        t("adam", System::Amd, ProgVersion::Native) / t("adam", System::Amd, ProgVersion::Ompx);
    assert!(amd > 1.05, "MI250 adam hip/ompx {amd} should show the ompx win");
}

#[test]
fn stencil_generic_mode_pathology() {
    for sys in [System::Nvidia, System::Amd] {
        let omp = t("stencil", sys, ProgVersion::Omp);
        let ompx = t("stencil", sys, ProgVersion::Ompx);
        let native = t("stencil", sys, ProgVersion::Native);
        assert!(ompx < native, "{}: stencil ompx should beat native", sys.label());
        assert!(omp / ompx > 50.0, "{}: stencil omp/ompx only {}", sys.label(), omp / ompx);
    }
}

/// Full-workload-scale validation of the entire shape table. Slow in
/// debug builds, so opt-in: `cargo test --release -- --ignored`.
/// The `figures shapecheck` binary runs the same assertions.
#[test]
#[ignore = "full-scale run; use --release -- --ignored or `figures shapecheck`"]
fn shape_table_holds_at_default_scale() {
    for sys in [System::Nvidia, System::Amd] {
        let ompx = run_app("xsbench", sys, ProgVersion::Ompx, WorkScale::Default);
        let native = run_app("xsbench", sys, ProgVersion::Native, WorkScale::Default);
        assert!(ompx.reported_seconds < native.reported_seconds);
        let omp = run_app("stencil", sys, ProgVersion::Omp, WorkScale::Default);
        let fast = run_app("stencil", sys, ProgVersion::Ompx, WorkScale::Default);
        assert!(omp.reported_seconds / fast.reported_seconds > 50.0);
    }
}

#[test]
fn every_cell_of_figure8_produces_a_consistent_checksum() {
    for app in ompx_hecbench::APP_NAMES {
        let mut sums = std::collections::HashSet::new();
        for sys in [System::Nvidia, System::Amd] {
            for v in ProgVersion::all() {
                sums.insert(run_app(app, sys, v, WorkScale::Test).checksum);
            }
        }
        assert_eq!(sums.len(), 1, "{app}: checksum mismatch across versions/systems");
    }
}
