//! Cross-tenant fault isolation through the serving layer: an injected
//! device loss on the pool member serving tenant A must leave every other
//! tenant's results bit-identical to a fault-free run of the same load.
//!
//! This is the serving-layer version of the chaos trichotomy guarantee:
//! per-member fault states (decorrelated via `FaultPlan::for_pool_member`)
//! mean a sticky error is a *member* property, tenant→member sharding
//! means blast radius is the member's tenants, and checksum-validated
//! re-execution means even those tenants get bit-identical results or a
//! typed error — never silent corruption.

use ompx_serve::{serve, DevicePool, LoadSpec, ServeConfig, Verdict};
use ompx_sim::fault::FaultPlan;

const SEED: u64 = 77;

fn config() -> ServeConfig {
    let mut cfg = ServeConfig::new(SEED);
    // No backpressure: shedding depends on global queue state, which
    // legitimately shifts when tenants re-home; this test is about the
    // *results* of executed requests.
    cfg.queue_cap = 100_000;
    cfg
}

fn load() -> LoadSpec {
    LoadSpec { seed: SEED, clients: 160, tenants: 8 }
}

#[test]
fn device_loss_on_tenant_a_leaves_tenant_b_bit_identical() {
    // Loss-only plan: member 0 dies early, every other member's derived
    // plan is quiet (rate 0; for_pool_member strips the scheduled loss).
    let mut faulty_cfg = config();
    faulty_cfg.plan = Some(FaultPlan::seeded(SEED, 0.0).with_device_loss_at(2));
    let faulty = serve(&faulty_cfg, &load()).expect("faulty serve run");
    let clean = serve(&config(), &load()).expect("fault-free serve run");

    assert!(faulty.pool.members[0].lost, "scheduled loss never fired");
    for m in 1..faulty.pool.members.len() {
        assert!(!faulty.pool.members[m].lost, "loss leaked to member {m}");
    }

    // Tenants A = sharded to member 0 before the loss; B = everyone else.
    // (Sharding is a pure function of the seed and the alive set, so a
    // fresh all-alive pool reproduces the initial homes.)
    let initial = DevicePool::new(&faulty_cfg.devices, None, SEED);
    let tenant_a: Vec<u32> = (0..8).filter(|&t| initial.home_of(t) == Some(0)).collect();
    assert!(!tenant_a.is_empty(), "no tenant homed on member 0; pick another seed");
    assert!(tenant_a.len() < 8, "every tenant homed on member 0; pick another seed");

    assert_eq!(faulty.responses.len(), clean.responses.len());
    for (f, c) in faulty.responses.iter().zip(&clean.responses) {
        assert_eq!(f.id, c.id);
        // Trichotomy for everyone, fault or not.
        match &f.verdict {
            Verdict::Success | Verdict::Fallback | Verdict::TypedError(_) => {}
            other => panic!("request {}: {other:?}", f.id),
        }
        if tenant_a.contains(&f.tenant) {
            // Tenant A rides the loss: whatever the verdict, a completed
            // result is still bit-identical to the fault-free checksum.
            if matches!(f.verdict, Verdict::Success | Verdict::Fallback) {
                assert_eq!(f.checksum, c.checksum, "tenant A request {} corrupted", f.id);
            }
        } else {
            // Tenant B must not observe the fault at all: same verdict,
            // same bits as the fault-free run.
            assert_eq!(f.verdict, c.verdict, "tenant B request {} verdict changed", f.id);
            assert_eq!(f.checksum, c.checksum, "tenant B request {} bits changed", f.id);
            assert_eq!(f.verdict, Verdict::Success);
        }
    }

    // The fault-free control is itself all-success.
    assert!(clean.responses.iter().all(|r| r.verdict == Verdict::Success));
}
