//! Resilience through the serving layer: a mid-load device loss must be
//! absorbed by the recovery machinery — the lost member's backlog is
//! re-homed (and a benched warm spare promoted into the serving set) —
//! and every request that still completes must be bit-identical to the
//! fault-free run of the same seeded load. Deadlines, hedging, and
//! breakers may *move* work between members; they must never change the
//! bits.

use ompx_serve::{serve, LoadSpec, ServeConfig, Verdict};
use ompx_sim::fault::FaultPlan;

const SEED: u64 = 77;

fn config() -> ServeConfig {
    let mut cfg = ServeConfig::new(SEED);
    // No backpressure: shedding depends on global queue state, which
    // legitimately shifts when tenants re-home; this test is about the
    // *results* of executed requests.
    cfg.queue_cap = 100_000;
    cfg
}

fn load() -> LoadSpec {
    LoadSpec { seed: SEED, clients: 160, tenants: 8 }
}

#[test]
fn mid_load_device_loss_is_absorbed_and_bits_match_fault_free() {
    // Loss-only plan: member 0 dies after its 6th device op — mid-load,
    // with its backlog non-empty — and a warm spare sits on the bench.
    let mut faulty_cfg = config();
    faulty_cfg.plan = Some(FaultPlan::seeded(SEED, 0.0).with_device_loss_at(6));
    faulty_cfg.spares = vec![ompx_serve::DeviceKind::A100];
    let faulty = serve(&faulty_cfg, &load()).expect("no panic on an injected loss");
    let clean = serve(&config(), &load()).expect("fault-free control");

    // The loss fired, stayed on member 0, and the spare was promoted.
    assert!(faulty.pool.members[0].lost, "scheduled loss never fired");
    for m in 1..faulty.pool.members.len() {
        assert!(!faulty.pool.members[m].lost, "loss leaked to member {m}");
    }
    let spare = faulty_cfg.devices.len();
    assert!(!faulty.pool.members[spare].standby, "warm spare never promoted");
    assert_eq!(faulty.stats.spares_promoted, 1);

    // Work moved off the dead member: after the loss, its tenants'
    // requests completed elsewhere (re-homed or hedged), so other
    // members picked up traffic the clean run gave to member 0.
    let served_elsewhere: u64 = faulty.pool.members.iter().skip(1).map(|m| m.served).sum();
    let clean_elsewhere: u64 = clean.pool.members.iter().skip(1).map(|m| m.served).sum();
    assert!(
        served_elsewhere > clean_elsewhere,
        "no re-homed traffic: {served_elsewhere} vs fault-free {clean_elsewhere}"
    );

    // Bit-identity: every request that completed under the loss carries
    // exactly the checksum the fault-free run produced for it — whichever
    // member (including the promoted spare) executed it.
    assert_eq!(faulty.responses.len(), clean.responses.len());
    for (f, c) in faulty.responses.iter().zip(&clean.responses) {
        assert_eq!(f.id, c.id);
        match &f.verdict {
            Verdict::Success | Verdict::Fallback | Verdict::TypedError(_) => {}
            other => panic!("request {}: {other:?}", f.id),
        }
        if matches!(f.verdict, Verdict::Success | Verdict::Fallback) {
            assert_eq!(f.checksum, c.checksum, "request {} bits changed under loss", f.id);
        }
    }
    assert!(clean.responses.iter().all(|r| r.verdict == Verdict::Success));
}

#[test]
fn hedged_requests_keep_fault_free_bits() {
    // A fault-heavy plan makes service times erratic enough for the
    // hedge threshold to engage; whatever wins each race, completed
    // responses must keep the fault-free checksum.
    let mut cfg = config();
    cfg.plan = Some(FaultPlan::seeded(SEED, 0.05));
    let chaotic = serve(&cfg, &load()).expect("no panic under chaos");
    let clean = serve(&config(), &load()).expect("fault-free control");
    for (f, c) in chaotic.responses.iter().zip(&clean.responses) {
        assert_eq!(f.id, c.id);
        assert!(
            !matches!(f.verdict, Verdict::Corrupt(_)),
            "request {} corrupted under chaos",
            f.id
        );
        if matches!(f.verdict, Verdict::Success | Verdict::Fallback) {
            assert_eq!(f.checksum, c.checksum, "request {} bits changed", f.id);
        }
    }
    // The run exercised the resilience machinery at all (any of the
    // mechanisms counts; the stats are deterministic for the seed).
    let s = &chaotic.stats;
    assert!(
        s.hedges_launched + s.breaker_transitions + s.deadline_misses > 0,
        "chaos run exercised no resilience path: {s:?}"
    );
}
