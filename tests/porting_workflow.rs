//! End-to-end test of the paper's central claim: a CUDA kernel ports to
//! the extended OpenMP "often reducing the porting process to text
//! replacement" — and the port computes identical results while matching
//! native performance characteristics.
//!
//! The kernel under test exercises every §3.3 device API family: thread
//! indexing, shared memory (`groupprivate`), block barriers, warp
//! shuffles, and a grid-wide atomic reduction.

use ompx::prelude::*;
use ompx_klang::cuda;
use ompx_sim::mem::DBuf;
use ompx_sim::prelude::*;

const N: usize = 4096;
const BLOCK: usize = 128;

/// The kernel body, written once against the shared thread-context
/// vocabulary: a block-tiled sum-reduce with a warp-shuffle finish.
fn reduce_body(tc: &mut ThreadCtx<'_>, input: &DBuf<f64>, total: &DBuf<f64>, tile_slot: usize) {
    let tile = tc.shared::<f64>(tile_slot);
    let tid = tc.thread_rank();
    let gid = tc.global_thread_id_x();

    // Stage one element per thread.
    let v = if gid < N { tc.read(input, gid) } else { 0.0 };
    tc.swrite(&tile, tid, v);
    tc.sync_threads();

    // Tree-reduce the tile down to warp width.
    let mut width = BLOCK / 2;
    while width >= tc.warp_size() {
        if tid < width {
            let a = tc.sread(&tile, tid);
            let b = tc.sread(&tile, tid + width);
            tc.flops(1);
            tc.swrite(&tile, tid, a + b);
        }
        tc.sync_threads();
        width /= 2;
    }

    // First warp finishes with shuffles.
    if tid < tc.warp_size() {
        let mut acc = tc.sread(&tile, tid);
        let mut offset = tc.warp_size() / 2;
        while offset > 0 {
            let other = tc.shfl_down(acc, offset);
            tc.flops(1);
            acc += other;
            offset /= 2;
        }
        if tid == 0 {
            tc.atomic_add(total, 0, acc);
        }
    } else {
        // Retired lanes: the remaining warps exit; warp collectives above
        // only involve warp 0.
    }
}

fn input_data() -> Vec<f64> {
    (0..N).map(|i| ((i * 37) % 101) as f64 * 0.25).collect()
}

#[test]
fn cuda_and_ompx_ports_agree_exactly() {
    let host = input_data();
    let expect: f64 = host.iter().sum();

    // ---- CUDA original ----------------------------------------------------
    let ctx = cuda::cuda_context_clang();
    let d_in = ctx.malloc_from(&host);
    let d_tot = ctx.malloc::<f64>(1);
    let mut cfg = LaunchConfig::linear(N, BLOCK as u32);
    let slot = cfg.shared_array::<f64>(BLOCK);
    let kernel = Kernel::with_flags(
        "block_reduce",
        KernelFlags { uses_block_sync: true, uses_warp_ops: true },
        {
            let (i, t) = (d_in.clone(), d_tot.clone());
            move |tc: &mut ThreadCtx<'_>| reduce_body(tc, &i, &t, slot)
        },
    );
    let native = ctx.launch_cfg(&kernel, cfg).expect("cuda launch");
    assert_eq!(d_tot.get(0), expect, "CUDA reduction wrong");

    // ---- ompx port: same body, bare launch --------------------------------
    let omp = ompx::runtime_nvidia();
    let d_in2 = omp.device().alloc_from(&host);
    let d_tot2 = omp.device().alloc::<f64>(1);
    let mut target = BareTarget::new(&omp, "block_reduce")
        .num_teams([(N / BLOCK) as u32])
        .thread_limit([BLOCK as u32])
        .uses_block_sync()
        .uses_warp_ops();
    let slot2 = target.shared_array::<f64>(BLOCK);
    let ported = target
        .launch({
            let (i, t) = (d_in2.clone(), d_tot2.clone());
            move |tc| reduce_body(tc, &i, &t, slot2)
        })
        .expect("bare launch");
    assert_eq!(d_tot2.get(0), expect, "ompx reduction wrong");

    // Identical functional event counts: the port did not change the
    // program, only the launch mechanism.
    assert_eq!(native.stats.flops, ported.stats.flops);
    assert_eq!(native.stats.global_load_bytes, ported.stats.global_load_bytes);
    assert_eq!(native.stats.barriers, ported.stats.barriers);
    assert_eq!(native.stats.warp_ops, ported.stats.warp_ops);

    // And near-identical modeled performance (same codegen baseline modulo
    // the prototype's derived defaults).
    let ratio = ported.modeled.seconds / native.modeled.seconds;
    assert!((0.8..1.3).contains(&ratio), "port perf ratio {ratio} out of band");
}

#[test]
fn the_port_is_portable_to_amd_without_changes() {
    // Same program text, AMD runtime: 64-lane wavefronts change the warp
    // topology but not the answer.
    let host = input_data();
    let expect: f64 = host.iter().sum();

    let omp = ompx::runtime_amd();
    assert_eq!(omp.device().profile().warp_size, 64);
    let d_in = omp.device().alloc_from(&host);
    let d_tot = omp.device().alloc::<f64>(1);
    let mut target = BareTarget::new(&omp, "block_reduce")
        .num_teams([(N / BLOCK) as u32])
        .thread_limit([BLOCK as u32])
        .uses_block_sync()
        .uses_warp_ops();
    let slot = target.shared_array::<f64>(BLOCK);
    target
        .launch({
            let (i, t) = (d_in.clone(), d_tot.clone());
            move |tc| reduce_body(tc, &i, &t, slot)
        })
        .expect("bare launch on AMD");
    assert_eq!(d_tot.get(0), expect);
}

#[test]
fn device_api_text_replacement_table() {
    // The §3.3 mapping, exercised one-for-one on a live kernel:
    //   threadIdx.x        -> ompx_thread_id_x()
    //   blockIdx.x         -> ompx_block_id_x()
    //   blockDim.x         -> ompx_block_dim_x()
    //   gridDim.x          -> ompx_grid_dim_x()
    //   __syncthreads()    -> ompx_sync_thread_block()
    //   __shfl_down_sync() -> ompx_shfl_down_sync()
    let omp = ompx::runtime_nvidia();
    let ok = omp.device().alloc::<u32>(1);
    BareTarget::new(&omp, "replacement")
        .num_teams([4u32])
        .thread_limit([64u32])
        .uses_block_sync()
        .uses_warp_ops()
        .launch({
            let ok = ok.clone();
            move |tc| {
                let tid = ompx_thread_id_x(tc);
                let bid = ompx_block_id_x(tc);
                let bdim = ompx_block_dim_x(tc);
                let gdim = ompx_grid_dim_x(tc);
                assert_eq!(tid, tc.thread_id_x());
                assert_eq!(bid * bdim + tid, tc.global_thread_id_x());
                assert_eq!(gdim, 4);
                ompx_sync_thread_block(tc);
                let lane_val = ompx_shfl_down_sync(tc, tid as u64, 1);
                // Last lane keeps its own value; everyone else gets tid+1.
                if tc.lane_id() == tc.warp_size() - 1 {
                    assert_eq!(lane_val, tid as u64);
                } else {
                    assert_eq!(lane_val, tid as u64 + 1);
                }
                tc.atomic_add(&ok, 0, 1);
            }
        })
        .expect("launch");
    assert_eq!(ok.get(0), 4 * 64);
}
