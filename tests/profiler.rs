//! End-to-end integration tests for the ompx-prof profiling layer: span
//! capture through a real benchmark run, multi-track Chrome export,
//! stream-overlap accounting, and baseline regression gating.

use ompx_hecbench::{run_app, with_span_log, ProgVersion, System, WorkScale};
use ompx_hostrt::{KnownIssues, OpenMp};
use ompx_klang::toolchain::Toolchain;
use ompx_prof::probe::overlap_probe;
use ompx_prof::{
    derive_metrics, diff_baseline, parse_baseline, to_chrome_trace, to_json, CellProfile, Tolerance,
};
use ompx_sim::device::{Device, DeviceProfile};
use ompx_sim::span::Track;

fn omp_small() -> OpenMp {
    OpenMp::with_device(
        Device::new(DeviceProfile::test_small()),
        Toolchain::OmpxPrototype,
        KnownIssues::new(),
    )
}

#[test]
fn profiled_benchmark_run_yields_spans_and_multitrack_trace() {
    let ((outcome, probe), spans) = with_span_log(|| {
        let outcome = run_app("stencil", System::Nvidia, ProgVersion::Ompx, WorkScale::Test);
        let probe = overlap_probe(&omp_small());
        (outcome, probe)
    });
    assert!(!outcome.excluded);
    assert!(!spans.is_empty(), "a profiled run must record spans");

    // Host track saw the app; stream tracks came from the probe.
    let host = spans.iter().filter(|s| s.track == Track::Host).count();
    let streams: std::collections::HashSet<u64> = spans
        .iter()
        .filter_map(|s| match s.track {
            Track::Stream(id) => Some(id),
            _ => None,
        })
        .collect();
    assert!(host > 0, "host track must have spans");
    assert!(streams.len() >= 3, "probe uses one serial + two overlap streams, saw {streams:?}");

    // Flow arrows connect nowait submissions to their stream spans.
    let tails: Vec<u64> = spans.iter().filter_map(|s| s.flow_out).collect();
    let heads: Vec<u64> = spans.iter().filter_map(|s| s.flow_in).collect();
    assert!(!tails.is_empty() && !heads.is_empty());
    for h in &heads {
        assert!(tails.contains(h), "flow head {h} has no matching tail");
    }

    // The Chrome export names every track and carries the flow pairs.
    let json = to_chrome_trace(&spans);
    assert!(json.contains("host (modeled time)"));
    assert!(json.contains("(interop obj)"));
    assert!(json.contains("\"ph\":\"s\""));
    assert!(json.contains("\"ph\":\"f\""));

    // Probe accounting: overlap halves the serial makespan.
    assert!(probe.speedup > 1.9, "stream overlap degenerated: {}", probe.speedup);
    for st in &probe.stream_stats {
        assert_eq!(st.submitted, st.completed, "streams drained");
        assert!(st.modeled_busy_s > 0.0);
    }
}

#[test]
fn derived_metrics_gate_against_a_baseline_round_trip() {
    let outcome = run_app("adam", System::Amd, ProgVersion::Omp, WorkScale::Test);
    let dev = DeviceProfile::mi250();
    let metrics = derive_metrics(&dev, &outcome.stats, &outcome.kernel_model);
    assert!(metrics.occupancy_pct > 0.0 && metrics.occupancy_pct <= 100.0);
    assert!(metrics.mem_throughput_pct <= 100.0);

    let cell = CellProfile {
        app: "adam".into(),
        version: "omp".into(),
        system: "amd".into(),
        checksum: outcome.checksum,
        reported_seconds: outcome.reported_seconds,
        excluded: outcome.excluded,
        metrics,
    };
    let cells = vec![cell];
    let baseline = parse_baseline(&to_json(&cells)).expect("baseline round-trips");
    assert!(diff_baseline(&cells, &baseline, Tolerance::default()).is_empty());

    // A rerun of the same deterministic cell still matches the baseline.
    let rerun = run_app("adam", System::Amd, ProgVersion::Omp, WorkScale::Test);
    assert_eq!(rerun.checksum, baseline[0].checksum);
    assert_eq!(rerun.reported_seconds, baseline[0].reported_seconds);

    // And a genuinely slower run fails the gate.
    let mut slower = cells.clone();
    slower[0].reported_seconds *= 2.0;
    let drifts = diff_baseline(&slower, &baseline, Tolerance::default());
    assert!(drifts.iter().any(|d| d.to_string().contains("modeled time drifted")));
}

#[test]
fn memcpy_spans_carry_bytes_and_modeled_durations() {
    use ompx::host_api::{ompx_free, ompx_malloc, ompx_memcpy_d2h, ompx_memcpy_h2d};
    use ompx_sim::span::SpanCategory;

    let (_, spans) = with_span_log(|| {
        let omp = omp_small();
        let buf = ompx_malloc::<f32>(&omp, 1024);
        ompx_memcpy_h2d(&omp, &buf, &vec![1.0f32; 1024]);
        let mut out = vec![0.0f32; 1024];
        ompx_memcpy_d2h(&omp, &mut out, &buf);
        ompx_free(&omp, &buf);
    });
    let h2d: Vec<_> = spans.iter().filter(|s| s.cat == SpanCategory::MemcpyH2D).collect();
    let d2h: Vec<_> = spans.iter().filter(|s| s.cat == SpanCategory::MemcpyD2H).collect();
    assert_eq!(h2d.len(), 1);
    assert_eq!(d2h.len(), 1);
    assert_eq!(h2d[0].bytes, 4096);
    assert_eq!(d2h[0].bytes, 4096);
    // PCIe-modeled durations: latency + bytes/bandwidth on test_small.
    let dev = DeviceProfile::test_small();
    let expect = dev.transfer_seconds(4096);
    assert!((h2d[0].bytes, h2d[0].dur_s) == (4096, expect), "h2d duration modeled");
    // Host cursor ordering: d2h starts after h2d ends.
    assert!(d2h[0].start_s >= h2d[0].start_s + h2d[0].dur_s);
}

#[test]
fn raw_device_launches_now_carry_modeled_seconds() {
    use ompx_sim::prelude::*;
    let dev = Device::new(DeviceProfile::test_small());
    dev.enable_tracing();
    let buf = dev.alloc::<f32>(256);
    let k = Kernel::new("raw", {
        let buf = buf.clone();
        move |tc: &mut ThreadCtx<'_>| {
            let i = tc.global_thread_id_x();
            if i < 256 {
                tc.write(&buf, i, i as f32);
            }
        }
    });
    dev.launch(&k, LaunchConfig::new(2u32, 128u32)).unwrap();
    let recs = dev.trace().records();
    assert_eq!(recs.len(), 1);
    assert!(
        recs[0].modeled_seconds > 0.0,
        "raw Device::launch must self-model its duration (was the 0.0 hole)"
    );
    assert!(!recs[0].runtime_attributed, "no runtime attributed this launch");
}
