//! Integration tests of OpenMP semantics across crate boundaries, plus
//! property-based tests (proptest) on the invariants the runtime relies on.

use ompx_hostrt::{DepKey, InteropObj, OpenMp, QuirkSet};
use ompx_sim::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn target_data_region_lifecycle() {
    let omp = OpenMp::test_system();
    let env = omp.target_data();
    let mut host = vec![1.0f32; 256];

    // Enter with map(to:), run a region referencing the present buffer,
    // exit with map(from:) — the classic Figure 2 structure.
    let dev = env.map_to_f32(&host);
    omp.target("touch")
        .num_teams(4)
        .thread_limit(32)
        .run_distribute_parallel_for(256, {
            let dev = dev.clone();
            move |tc, i, _s| {
                let v = tc.read(&dev, i);
                tc.write(&dev, i, v + i as f32);
            }
        })
        .unwrap();
    env.map_from_f32(&mut host);
    for (i, v) in host.iter().enumerate() {
        assert_eq!(*v, 1.0 + i as f32);
    }
    assert_eq!(env.present_count(), 0);
}

#[test]
fn nowait_chain_with_taskwait() {
    // A chain of dependent nowait target tasks finishing with taskwait —
    // §2.4's "dependencies established using the depend clause".
    let omp = OpenMp::test_system();
    let buf = omp.device().alloc::<f32>(512);
    let key = DepKey::token(99);
    for step in 0..8 {
        omp.target(&format!("chain{step}")).num_teams(4).thread_limit(32).run_dpf_nowait(
            &[key],
            &[key],
            512,
            {
                let buf = buf.clone();
                move |tc, i, _s| {
                    let v = tc.read(&buf, i);
                    tc.write(&buf, i, v + 1.0);
                }
            },
        );
    }
    omp.taskwait();
    assert!(buf.to_vec().iter().all(|&v| v == 8.0), "all 8 increments must apply in order");
}

#[test]
fn interop_object_orders_foreign_and_target_work() {
    let omp = OpenMp::test_system();
    let obj = InteropObj::init_targetsync(&omp);
    let log = Arc::new(AtomicUsize::new(0));
    // Foreign work and target-ish work interleaved in one stream must run
    // in submission order.
    for i in 1..=20 {
        let l = Arc::clone(&log);
        obj.enqueue(move || {
            let prev = l.fetch_add(1, Ordering::SeqCst);
            assert_eq!(prev + 1, i);
        });
    }
    obj.synchronize();
    assert_eq!(log.load(Ordering::SeqCst), 20);
}

#[test]
fn quirks_do_not_change_results_only_plans() {
    let omp = OpenMp::test_system();
    omp.quirks().set(
        "quirked",
        QuirkSet { thread_cap: Some(8), force_generic: true, ..Default::default() },
    );
    let run = |name: &str| {
        let out = omp.device().alloc::<u32>(300);
        let r = omp
            .target(name)
            .num_teams(5)
            .thread_limit(64)
            .run_distribute_parallel_for(300, {
                let out = out.clone();
                move |tc, i, _s| tc.write(&out, i, (i * i) as u32)
            })
            .unwrap();
        (out.to_vec(), r.plan)
    };
    let (v1, p1) = run("quirked");
    let (v2, p2) = run("clean");
    assert_eq!(v1, v2);
    assert_eq!(p1.threads, 8);
    assert_eq!(p2.threads, 64);
    assert_ne!(p1.mode, p2.mode);
}

#[test]
fn declare_target_reduction_and_conditional_offload() {
    // The newer runtime features working together through the public API:
    // a declare-target accumulator, a reduction clause, and the `if`
    // clause's host fallback — all computing the same answer.
    let omp = OpenMp::test_system();
    let n = 512usize;
    let data = omp.device().alloc_from(&(0..n).map(|i| (i % 17) as f64).collect::<Vec<_>>());
    let expect: f64 = (0..n).map(|i| (i % 17) as f64).sum();

    // reduction(+:) on the device.
    let (sum_dev, _) = omp
        .target("reduce_it")
        .num_teams(4)
        .thread_limit(32)
        .run_reduce_sum(n, {
            let data = data.clone();
            move |tc, i| tc.read(&data, i)
        })
        .unwrap();
    assert_eq!(sum_dev, expect);

    // declare-target global accumulated by a plain region.
    let acc = ompx_hostrt::declare_target_global::<f64>(&omp, "acc", 1);
    omp.target("accumulate")
        .num_teams(4)
        .thread_limit(32)
        .run_distribute_parallel_for(n, {
            let (data, acc) = (data.clone(), acc.clone());
            move |tc, i, _s| {
                let v = tc.read(&data, i);
                tc.atomic_add(&acc, 0, v);
            }
        })
        .unwrap();
    assert_eq!(ompx_hostrt::lookup_target_global::<f64>(&omp, "acc").unwrap().get(0), expect);

    // if(false): host fallback, same value.
    let host_out = omp.device().alloc::<f64>(1);
    omp.target("host_sum")
        .when(false)
        .run_distribute_parallel_for(n, {
            let (data, host_out) = (data.clone(), host_out.clone());
            move |tc, i, _s| {
                let v = tc.read(&data, i);
                tc.atomic_add(&host_out, 0, v);
            }
        })
        .unwrap();
    assert_eq!(host_out.get(0), expect);
}

#[test]
fn allocators_and_constant_memory_through_kernels() {
    use ompx_hostrt::allocator::{omp_alloc_const, omp_alloc_pinned};
    let omp = ompx::runtime_on(Device::new(DeviceProfile::test_small()));
    let table = omp_alloc_const(&omp, &[2.0f64, 4.0, 8.0, 16.0]);
    let mut staging = omp_alloc_pinned::<f64>(&omp, 8);
    staging.as_mut_slice().copy_from_slice(&[1.0; 8]);
    let input = omp.device().alloc_from(staging.as_slice());
    let out = omp.device().alloc::<f64>(8);
    ompx::BareTarget::new(&omp, "const_scale")
        .num_teams([1u32])
        .thread_limit([8u32])
        .launch({
            let (table, input, out) = (table.clone(), input.clone(), out.clone());
            move |tc| {
                let i = tc.thread_rank();
                let scale = tc.cread(&table, i % 4);
                let v = tc.read(&input, i);
                tc.flops(1);
                tc.write(&out, i, v * scale);
            }
        })
        .unwrap();
    assert_eq!(out.to_vec(), vec![2.0, 4.0, 8.0, 16.0, 2.0, 4.0, 8.0, 16.0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (teams, threads, n) geometry covers 0..n exactly once through
    /// the distribute-parallel-for lowering.
    #[test]
    fn dpf_covers_all_iterations(teams in 1u32..6, threads in 1u32..64, n in 1usize..2000) {
        let omp = OpenMp::test_system();
        let threads = threads.min(omp.device().profile().max_threads_per_block);
        let hits = omp.device().alloc::<u32>(n);
        omp.target("cover")
            .num_teams(teams)
            .thread_limit(threads)
            .run_distribute_parallel_for(n, {
                let hits = hits.clone();
                move |tc, i, _s| {
                    tc.atomic_add(&hits, i, 1);
                }
            })
            .unwrap();
        prop_assert!(hits.to_vec().iter().all(|&h| h == 1));
    }

    /// Bare launches with any multi-dim geometry execute each global rank
    /// exactly once (dimension handling per §3.2).
    #[test]
    fn bare_multidim_covers_every_rank(gx in 1u32..5, gy in 1u32..4, bx in 1u32..9, by in 1u32..5) {
        let omp = ompx::runtime_on(Device::new(DeviceProfile::test_small()));
        let total = (gx * gy * bx * by) as usize;
        prop_assume!(bx * by <= omp.device().profile().max_threads_per_block);
        let hits = omp.device().alloc::<u32>(total);
        ompx::BareTarget::new(&omp, "cover_md")
            .num_teams([gx, gy])
            .thread_limit([bx, by])
            .launch({
                let hits = hits.clone();
                move |tc| {
                    tc.atomic_add(&hits, tc.global_rank(), 1);
                }
            })
            .unwrap();
        prop_assert!(hits.to_vec().iter().all(|&h| h == 1));
    }

    /// The present table honours arbitrary nesting depths: data written on
    /// the device only reaches the host at the outermost exit.
    #[test]
    fn present_table_refcount_depth(depth in 1usize..6) {
        let omp = OpenMp::test_system();
        let env = omp.target_data();
        let mut host = vec![0u32; 16];
        let bufs: Vec<_> = (0..depth).map(|_| env.map_to_u32(&host)).collect();
        bufs[0].set(3, 77);
        for k in 0..depth {
            prop_assert_eq!(env.present_count(), 1);
            env.map_from_u32(&mut host);
            if k + 1 < depth {
                prop_assert_eq!(host[3], 0, "copy-out before the last exit");
            }
        }
        prop_assert_eq!(host[3], 77);
        prop_assert_eq!(env.present_count(), 0);
    }
}
