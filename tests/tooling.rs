//! Integration tests for the release tooling around the reproduction:
//! launch tracing, profiler reports, the occupancy API, timed events, and
//! the race detector — all through the public crate surfaces.

use ompx_klang::cuda::cuda_context_clang;
use ompx_sim::prelude::*;

#[test]
fn tracing_and_profiling_work_together() {
    let ctx = cuda_context_clang();
    ctx.device().enable_tracing();

    let a = ctx.malloc_from(&vec![1.0f32; 1024]);
    let b = ctx.malloc::<f32>(1024);
    let kernel = Kernel::new("traced_saxpy", {
        let (a, b) = (a.clone(), b.clone());
        move |tc: &mut ThreadCtx<'_>| {
            let i = tc.global_thread_id_x();
            if i < 1024 {
                let v = tc.read(&a, i);
                tc.flops(2);
                tc.write(&b, i, 2.0 * v + 1.0);
            }
        }
    });
    for _ in 0..3 {
        ctx.launch(&kernel, 8u32, 128u32).unwrap();
    }

    // The trace recorded every launch with attributed modeled times.
    let recs = ctx.device().trace().records();
    assert_eq!(recs.len(), 3);
    for r in &recs {
        assert_eq!(r.kernel, "traced_saxpy");
        assert_eq!(r.grid.x, 8);
        assert_eq!(r.block.x, 128);
        assert_eq!(r.stats.flops, 2048);
        assert!(r.modeled_seconds > 0.0, "klang must attribute modeled time");
    }

    // Chrome trace export is well-formed and carries the events.
    let json = ctx.device().trace().to_chrome_trace();
    assert_eq!(json.matches("traced_saxpy").count(), 3);
    assert!(json.contains("\"args\":{\"grid\":\"8x1x1\""));

    // The profiler report agrees with the trace.
    let report = ctx.profile_report();
    assert!(report.contains("traced_saxpy"));
    assert!(report.contains("       3"), "three launches:\n{report}");
    let p = ctx.kernel_profile("traced_saxpy");
    let traced_total: f64 = recs.iter().map(|r| r.modeled_seconds).sum();
    assert!((p.modeled_seconds - traced_total).abs() < 1e-15);
}

#[test]
fn timed_events_measure_async_pipelines() {
    let ctx = cuda_context_clang();
    let stream = ctx.stream_create();
    let n = 4096usize;
    let buf = ctx.malloc::<f32>(n);

    let start = stream.record_event();
    // H2D copy then two kernels, all async on one stream.
    ctx.memcpy_h2d_async(&buf, &vec![1.0f32; n], &stream);
    for pass in 0..2 {
        let kernel = Kernel::new(format!("pipe{pass}"), {
            let buf = buf.clone();
            move |tc: &mut ThreadCtx<'_>| {
                let i = tc.global_thread_id_x();
                if i < n {
                    let v = tc.read(&buf, i);
                    tc.flops(1);
                    tc.write(&buf, i, v * 2.0);
                }
            }
        });
        ctx.launch_async(&kernel, LaunchConfig::linear(n, 128), &stream);
    }
    let end = stream.record_event();
    end.wait();

    assert!(buf.to_vec().iter().all(|&v| v == 4.0));
    let elapsed = end.modeled_elapsed_since(&start);
    assert!(elapsed > 0.0, "the events must bracket modeled device work");
    // The elapsed time covers the transfer plus both kernels.
    let transfer = ctx.device().profile().transfer_seconds(n * 4);
    assert!(elapsed >= transfer, "elapsed {elapsed} < transfer {transfer}");
}

#[test]
fn occupancy_api_and_race_detector_compose() {
    use ompx_klang::toolchain::Toolchain;
    let ctx = cuda_context_clang();
    ctx.codegen().set(
        "tiled",
        Toolchain::Clang,
        CodegenInfo { regs_per_thread: 64, ..CodegenInfo::default() },
    );
    let blocks = ctx.occupancy_max_active_blocks("tiled", 256, 4 * 1024);
    assert!((1..=32).contains(&blocks));

    // A correctly synchronized tiled kernel runs clean on the A100
    // profile (warp 32, full team path).
    let tpb = 64usize;
    let mut cfg = LaunchConfig::new(4u32, tpb as u32);
    let slot = cfg.shared_array::<f32>(tpb);
    let out = ctx.malloc::<f32>(4 * tpb);
    let kernel =
        Kernel::with_flags("tiled", KernelFlags { uses_block_sync: true, uses_warp_ops: false }, {
            let out = out.clone();
            move |tc: &mut ThreadCtx<'_>| {
                let tile = tc.shared::<f32>(slot);
                let t = tc.thread_rank();
                tc.swrite(&tile, t, t as f32);
                tc.sync_threads();
                let v = tc.sread(&tile, (t + tpb / 2) % tpb);
                tc.write(&out, tc.global_rank(), v);
            }
        });
    ctx.launch_cfg(&kernel, cfg).unwrap();
    assert_eq!(out.get(0), (tpb / 2) as f32);
}
