//! Cross-crate telemetry checks: the JSON snapshot exporter and the
//! workspace's hand-rolled JSON reader (`ompx_prof::jsonio`) agree — any
//! registry's `to_json` document parses, and every counter, gauge, and
//! histogram value round-trips exactly (Rust's float formatting is
//! shortest-round-trip, so `{:e}` text parses back to the same bits).

use ompx_prof::jsonio;
use ompx_telemetry::{to_json, MetricRegistry, MetricValue};
use proptest::prelude::*;

/// Find the parsed `metrics` entry with this name, or panic.
fn entry<'a>(metrics: &'a [jsonio::Json], name: &str) -> &'a jsonio::Json {
    metrics
        .iter()
        .find(|m| m.get("name").and_then(|j| j.as_str()) == Some(name))
        .unwrap_or_else(|| panic!("no metric named {name}"))
}

fn field(m: &jsonio::Json, key: &str) -> f64 {
    m.get(key).and_then(|j| j.as_f64()).unwrap_or_else(|| panic!("missing field {key}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn json_snapshot_round_trips_through_jsonio(
        c in 0u64..1_000_000_000_000,
        g in -1e6f64..1e6,
        samples in proptest::collection::vec(1e-3f64..1e3, 1..120),
        tenant in 0u32..8,
    ) {
        let reg = MetricRegistry::new();
        let t = tenant.to_string();
        reg.counter_add("serve_requests_total", &[("tenant", &t)], c);
        reg.gauge_set("serve_busy_seconds", &[("member", "0")], g);
        for &s in &samples {
            reg.hist_record("serve_latency_seconds", &[("tenant", &t)], s);
        }
        let snap = reg.snapshot();
        let doc = jsonio::parse(&to_json(&snap)).expect("snapshot JSON must parse");
        prop_assert_eq!(
            doc.get("schema").and_then(|j| j.as_str()),
            Some("ompx-metrics-v1")
        );
        let metrics = doc.get("metrics").and_then(|j| j.as_arr()).expect("metrics array");
        prop_assert_eq!(metrics.len(), snap.samples.len());

        let counter = entry(metrics, "serve_requests_total");
        prop_assert_eq!(field(counter, "value") as u64, c);
        prop_assert_eq!(
            counter.get("labels").and_then(|l| l.get("tenant")).and_then(|j| j.as_str()),
            Some(t.as_str())
        );

        let gauge = entry(metrics, "serve_busy_seconds");
        prop_assert_eq!(field(gauge, "value").to_bits(), g.to_bits());

        let hist = entry(metrics, "serve_latency_seconds");
        let h = snap
            .samples
            .iter()
            .find_map(|s| match (&s.name[..], &s.value) {
                ("serve_latency_seconds", MetricValue::Histogram(h)) => Some(h),
                _ => None,
            })
            .expect("histogram sample in snapshot");
        prop_assert_eq!(field(hist, "count") as u64, samples.len() as u64);
        prop_assert_eq!(field(hist, "sum").to_bits(), h.sum().to_bits());
        prop_assert_eq!(field(hist, "min").to_bits(), h.min().to_bits());
        prop_assert_eq!(field(hist, "max").to_bits(), h.max().to_bits());
        for (q, key) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            prop_assert_eq!(field(hist, key).to_bits(), h.quantile(q).to_bits());
        }
    }
}
