#!/usr/bin/env bash
# CI gate: build, tests, lints, format, and a sanitizer smoke run.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1 suite)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> sanitize smoke run (all tools, stencil omp, test scale)"
cargo run --release -q -p ompx-bench --bin sanitize -- \
    --tool all --app stencil --version omp --test-scale

echo "==> sanitize fixture check (memcheck must fire)"
if cargo run --release -q -p ompx-bench --bin sanitize -- \
    --tool memcheck --fixture oob-write >/dev/null; then
    echo "error: oob-write fixture reported no findings" >&2
    exit 1
fi

echo "==> analyze smoke run (all 6 apps x 4 versions, with replay, A100)"
cargo run --release -q -p ompx-bench --bin analyze -- --replay

echo "==> analyze replay, AMD leg (MI250, warp 64)"
cargo run --release -q -p ompx-bench --bin analyze -- --replay --system amd

echo "==> summary extraction, A100 leg (all 24 cells: fit, replay-validate, diff)"
cargo run --release -q -p ompx-bench --bin analyze -- extract --diff

echo "==> summary extraction, MI250 leg (warp 64)"
cargo run --release -q -p ompx-bench --bin analyze -- extract --diff --system amd

echo "==> analyze fixture check (barrier ordering mismatch must fire)"
if cargo run --release -q -p ompx-bench --bin analyze -- \
    --fixture barrier-wrong-order >/dev/null; then
    echo "error: barrier-wrong-order fixture reported no findings" >&2
    exit 1
fi

echo "==> analyze fixture check (non-affine gather must degrade to SummaryImprecise)"
# The fixture exits non-zero by design (it also carries real bounds
# errors), so capture the output rather than piping it under pipefail.
GATHER_OUT=$(cargo run --release -q -p ompx-bench --bin analyze -- \
    --fixture gather-nonaffine || true)
if ! grep -q SummaryImprecise <<<"$GATHER_OUT"; then
    echo "error: gather-nonaffine fixture did not surface SummaryImprecise" >&2
    exit 1
fi

echo "==> analyze fixture check (racecheck must fire)"
if cargo run --release -q -p ompx-bench --bin analyze -- \
    --fixture race-global >/dev/null; then
    echo "error: race-global fixture reported no findings" >&2
    exit 1
fi

echo "==> chaos smoke run (fixed seed, 5 schedules, full matrix, both systems)"
cargo run --release -q -p ompx-bench --bin chaos -- \
    --seed 20260807 --schedules 5 --test-scale >/dev/null

echo "==> chaos watchdog-partial smoke run (fixed seed, kind-pure schedules)"
cargo run --release -q -p ompx-bench --bin chaos -- \
    --seed 20260807 --schedules 3 --test-scale --only watchdog >/dev/null

echo "==> profile baseline gate (all apps x versions x both systems)"
cargo run --release -q -p ompx-bench --bin profile -- --test-scale \
    --baseline results/profile_baseline.json \
    --bench-out results/BENCH_prof.json >/dev/null

echo "==> simspeed determinism + speed gate (24-cell matrix, serial vs parallel)"
cargo run --release -q -p ompx-bench --bin simspeed -- \
    --runs 1 --baseline results/BENCH_simspeed.json >/dev/null

echo "==> cross-thread determinism gate (two identical runs at full worker width)"
DET=$(mktemp -d)
for r in a b; do
    # sanitize exits non-zero on findings by design — the racy fixture is
    # the point here, the gate is the byte-diff below.
    OMPX_SIM_WORKERS="$(nproc)" cargo run --release -q -p ompx-bench --bin sanitize -- \
        --tool all --fixture shared-race --json --out "$DET/$r-san.json" >/dev/null || true
    OMPX_SIM_WORKERS="$(nproc)" cargo run --release -q -p ompx-bench --bin analyze -- \
        extract --app stencil --version omp --json --out "$DET/$r-ext.json" >/dev/null
done
diff "$DET/a-san.json" "$DET/b-san.json"
diff "$DET/a-ext.json" "$DET/b-ext.json"
rm -rf "$DET"

echo "==> serve smoke + baseline gate (1000 clients, fixed seed, injected faults)"
cargo run --release -q -p ompx-bench --bin serve -- \
    --clients 1000 --tenants 8 \
    --baseline results/BENCH_serve.json >/dev/null

echo "==> metrics determinism gate (two identical seeded runs, snapshots bit-identical)"
MET=$(mktemp -d)
cargo run --release -q -p ompx-bench --bin serve -- \
    --clients 200 --tenants 4 \
    --metrics-out "$MET/a.prom" --metrics-json "$MET/a.json" >/dev/null
cargo run --release -q -p ompx-bench --bin serve -- \
    --clients 200 --tenants 4 \
    --metrics-out "$MET/b.prom" --metrics-json "$MET/b.json" >/dev/null
diff "$MET/a.prom" "$MET/b.prom"
diff "$MET/a.json" "$MET/b.json"
for fam in serve_requests_total serve_latency_seconds fault_injected_total \
    sim_launches_total sim_memcpy_bytes_total \
    resilience_breaker_transitions_total resilience_hedges_total \
    resilience_spare_promotions_total resilience_deadline_miss_total \
    resilience_shed_total; do
    if ! grep -q "^$fam" "$MET/a.prom"; then
        echo "error: metrics snapshot is missing family $fam" >&2
        exit 1
    fi
done
rm -rf "$MET"

echo "==> sweep baseline gate (7 load factors, fixed seed)"
cargo run --release -q -p ompx-bench --bin serve -- \
    --clients 1000 --tenants 8 --sweep \
    --baseline results/BENCH_sweep.json >/dev/null

echo "==> chaos-escalation SLO gate (5 fault-rate rungs, fixed seed)"
cargo run --release -q -p ompx-bench --bin serve -- \
    --clients 400 --tenants 8 --escalate \
    --baseline results/BENCH_resilience.json >/dev/null

echo "==> escalation determinism gate (two identical campaigns, byte-identical JSON)"
ESC=$(mktemp -d)
cargo run --release -q -p ompx-bench --bin serve -- \
    --clients 400 --tenants 8 --escalate \
    --bench-out "$ESC/a.json" --csv-out "$ESC/a.csv" >/dev/null
cargo run --release -q -p ompx-bench --bin serve -- \
    --clients 400 --tenants 8 --escalate \
    --bench-out "$ESC/b.json" --csv-out "$ESC/b.csv" >/dev/null
diff "$ESC/a.json" "$ESC/b.json"
diff "$ESC/a.csv" "$ESC/b.csv"
rm -rf "$ESC"

echo "CI OK"
